// Noncontiguous I/O end to end: the list-I/O wire verb (one round-trip for
// many extents, server-side validation that keeps the session), the strategy
// selection in SEMPLAR (naive / data sieving / list I/O), strided FileViews
// through the mpiio front end, and a randomized property suite that checks
// every strategy x cache combination against a flat in-memory model.
#include <gtest/gtest.h>

#include <filesystem>

#include "chaos.hpp"
#include "common/rng.hpp"
#include "core/semplar.hpp"
#include "mpiio/file.hpp"
#include "mpiio/ufs.hpp"
#include "simnet/faults.hpp"
#include "simnet/timescale.hpp"
#include "srb/server.hpp"

namespace remio::semplar {
namespace {

class NoncontigTest : public ::testing::Test {
 protected:
  NoncontigTest() : scale_(5000.0) {
    simnet::HostSpec server_host;
    server_host.name = "orion";
    fabric_.add_host(server_host);
    simnet::HostSpec node;
    node.name = "node0";
    fabric_.add_host(node);
    server_ = std::make_unique<srb::SrbServer>(fabric_, srb::ServerConfig{});
    server_->start();
    // Chaos lane: REMIO_CHAOS_CORRUPT flips bits on the supervised semplar
    // streams while the whole noncontig matrix runs. base_config() turns on
    // retries in that mode, so every strategy has to earn its correctness
    // under ambient corruption; raw SrbClient checks (tagged by host name,
    // not "semplar/") stay deterministic.
    if (chaos_corrupt_rate() > 0.0) {
      faults_ = std::make_shared<simnet::FaultInjector>();
      faults_->seed(0xc4a05u);
      faults_->set_corrupt_probability(chaos_corrupt_rate(), "semplar/");
      fabric_.set_fault_injector(faults_);
    }
  }

  Config base_config() const {
    Config cfg;
    cfg.client_host = "node0";
    cfg.conn.tcp_window = 0;
    if (faults_ != nullptr) {
      cfg.retry.max_attempts = 8;
      cfg.retry.backoff_base = 0.005;
      cfg.retry.backoff_cap = 0.04;
    }
    return cfg;
  }

  simnet::ScopedTimeScale scale_;
  simnet::Fabric fabric_;
  std::unique_ptr<srb::SrbServer> server_;
  std::shared_ptr<simnet::FaultInjector> faults_;
};

// --- the wire verb itself --------------------------------------------------

TEST_F(NoncontigTest, OneListMessageCarries64Extents) {
  srb::SrbClient client(fabric_, "node0", "orion", 5544);
  const auto fd = client.open("/list/many", srb::kRead | srb::kWrite | srb::kCreate);
  Rng rng(42);
  const Bytes image = rng.bytes(64 * 1024);
  client.pwrite(fd, ByteSpan(image.data(), image.size()), 0);

  // 64 extents of 128 bytes every 1 KiB.
  ExtentList xs;
  for (int i = 0; i < 64; ++i)
    xs.push_back({static_cast<std::uint64_t>(i) * 1024, 128});
  Bytes packed(static_cast<std::size_t>(total_bytes(xs)));

  const std::uint64_t before = client.rpc_count();
  EXPECT_EQ(client.preadv(fd, xs, MutByteSpan(packed.data(), packed.size())),
            packed.size());
  // The whole list travelled in ONE protocol round-trip.
  EXPECT_EQ(client.rpc_count() - before, 1u);

  std::size_t cursor = 0;
  for (const Extent& x : xs) {
    EXPECT_EQ(0, std::memcmp(packed.data() + cursor,
                             image.data() + x.offset,
                             static_cast<std::size_t>(x.len)));
    cursor += static_cast<std::size_t>(x.len);
  }

  // Scatter write: one message too, and the bytes land per extent.
  const Bytes fresh = rng.bytes(packed.size());
  const std::uint64_t wbefore = client.rpc_count();
  EXPECT_EQ(client.pwritev(fd, xs, ByteSpan(fresh.data(), fresh.size())),
            fresh.size());
  EXPECT_EQ(client.rpc_count() - wbefore, 1u);
  Bytes round(image.size());
  client.pread(fd, MutByteSpan(round.data(), round.size()), 0);
  cursor = 0;
  for (const Extent& x : xs) {
    EXPECT_EQ(0, std::memcmp(round.data() + x.offset, fresh.data() + cursor,
                             static_cast<std::size_t>(x.len)));
    cursor += static_cast<std::size_t>(x.len);
  }
  client.close(fd);
}

TEST_F(NoncontigTest, ListReadStopsAtEof) {
  srb::SrbClient client(fabric_, "node0", "orion", 5544);
  const auto fd = client.open("/list/eof", srb::kRead | srb::kWrite | srb::kCreate);
  const Bytes image = Rng(7).bytes(100);
  client.pwrite(fd, ByteSpan(image.data(), image.size()), 0);

  // Second extent straddles EOF, third lies fully beyond it.
  const ExtentList xs{{0, 50}, {80, 40}, {200, 10}};
  Bytes packed(100);
  EXPECT_EQ(client.preadv(fd, xs, MutByteSpan(packed.data(), packed.size())),
            70u);  // 50 + (100 - 80) + 0
  EXPECT_EQ(0, std::memcmp(packed.data(), image.data(), 50));
  EXPECT_EQ(0, std::memcmp(packed.data() + 50, image.data() + 80, 20));
  client.close(fd);
}

TEST_F(NoncontigTest, ServerRejectsMalformedListsButKeepsSession) {
  srb::SrbClient client(fabric_, "node0", "orion", 5544);
  const auto fd = client.open("/list/bad", srb::kRead | srb::kWrite | srb::kCreate);
  const Bytes image = Rng(9).bytes(4096);
  client.pwrite(fd, ByteSpan(image.data(), image.size()), 0);
  Bytes buf(4096);

  const auto expect_invalid = [&](const ExtentList& xs) {
    Bytes packed(static_cast<std::size_t>(total_bytes(xs)));
    try {
      client.preadv(fd, xs, MutByteSpan(packed.data(), packed.size()));
      FAIL() << "malformed list was accepted";
    } catch (const srb::SrbError& e) {
      EXPECT_EQ(e.status(), srb::Status::kInvalid);
    }
    // The same session keeps serving: the rejection was a semantic reply,
    // not a protocol kill.
    EXPECT_EQ(client.pread(fd, MutByteSpan(buf.data(), 16), 0), 16u);
  };

  expect_invalid({{100, 10}, {0, 10}});    // unsorted
  expect_invalid({{0, 100}, {50, 100}});   // overlapping
  expect_invalid({{0, 10}, {20, 0}});      // zero-length extent
  ExtentList too_many;
  for (std::uint32_t i = 0; i <= srb::kMaxListExtents; ++i)
    too_many.push_back({static_cast<std::uint64_t>(i) * 2, 1});
  expect_invalid(too_many);                // count over the cap

  // Total response bytes over kMaxMessage/2.
  ExtentList huge;
  for (int i = 0; i < 3; ++i)
    huge.push_back({static_cast<std::uint64_t>(i) * (40u << 20), 30u << 20});
  expect_invalid(huge);

  // Write flavour: data shorter than the declared extents.
  {
    const ExtentList xs{{0, 10}, {20, 10}};
    const Bytes data = Rng(11).bytes(12);  // needs 20
    try {
      client.pwritev(fd, xs, ByteSpan(data.data(), data.size()));
      FAIL() << "short write payload was accepted";
    } catch (const srb::SrbError& e) {
      EXPECT_EQ(e.status(), srb::Status::kInvalid);
    }
    EXPECT_EQ(client.pread(fd, MutByteSpan(buf.data(), 16), 0), 16u);
  }
  client.close(fd);
}

// --- strategy selection in SEMPLAR -----------------------------------------

TEST_F(NoncontigTest, ListStrategyCutsRoundTripsVsNaive) {
  Rng rng(13);
  const Bytes image = rng.bytes(256 * 1024);
  ExtentList xs;
  for (int i = 0; i < 64; ++i)
    xs.push_back({static_cast<std::uint64_t>(i) * 4096, 512});
  Bytes packed(static_cast<std::size_t>(total_bytes(xs)));

  const auto wire_ops_for = [&](Config::Sieve::Mode mode) {
    Config cfg = base_config();
    cfg.sieve.enabled = true;
    cfg.sieve.mode = mode;
    SemplarFile f(fabric_, cfg, "/strategy/obj",
                  mpiio::kModeRead | mpiio::kModeWrite | mpiio::kModeCreate |
                      mpiio::kModeTrunc);
    f.write_at(0, ByteSpan(image.data(), image.size()));
    const std::uint64_t before = f.stats().snapshot().wire_ops;
    EXPECT_EQ(f.readv(xs, MutByteSpan(packed.data(), packed.size())),
              packed.size());
    std::size_t cursor = 0;
    for (const Extent& x : xs) {
      EXPECT_EQ(0, std::memcmp(packed.data() + cursor, image.data() + x.offset,
                               static_cast<std::size_t>(x.len)));
      cursor += static_cast<std::size_t>(x.len);
    }
    return f.stats().snapshot().wire_ops - before;
  };

  const std::uint64_t naive = wire_ops_for(Config::Sieve::Mode::kNaive);
  const std::uint64_t list = wire_ops_for(Config::Sieve::Mode::kList);
  const std::uint64_t sieve = wire_ops_for(Config::Sieve::Mode::kSieve);
  EXPECT_EQ(naive, 64u);  // one round trip per extent
  EXPECT_EQ(list, 1u);    // one message carries all 64
  EXPECT_EQ(sieve, 1u);   // a sieved read is one hull fetch
  EXPECT_GE(naive / list, 5u);
}

TEST_F(NoncontigTest, AutoModePicksSieveForDenseAndListForSparse) {
  Config cfg = base_config();
  cfg.sieve.enabled = true;  // mode defaults to kAuto
  cfg.sieve.max_hull_bytes = 64 * 1024;
  cfg.obs.enabled = true;  // the strategy spans tell the two paths apart
  SemplarFile f(fabric_, cfg, "/auto/obj",
                mpiio::kModeRead | mpiio::kModeWrite | mpiio::kModeCreate |
                    mpiio::kModeTrunc);
  const Bytes image = Rng(17).bytes(1 << 20);
  f.write_at(0, ByteSpan(image.data(), image.size()));

  const auto spans_of = [&](obs::SpanKind kind) {
    std::size_t n = 0;
    for (const obs::Span& s : f.tracer()->snapshot())
      if (s.kind == kind) ++n;
    return n;
  };

  // Dense: 16 extents inside a 16 KiB hull -> sieving -> 1 hull read.
  ExtentList dense;
  for (int i = 0; i < 16; ++i)
    dense.push_back({static_cast<std::uint64_t>(i) * 1024, 256});
  Bytes dbuf(static_cast<std::size_t>(total_bytes(dense)));
  std::uint64_t before = f.stats().snapshot().wire_ops;
  f.readv(dense, MutByteSpan(dbuf.data(), dbuf.size()));
  EXPECT_EQ(f.stats().snapshot().wire_ops - before, 1u);
  EXPECT_EQ(spans_of(obs::SpanKind::kSieve), 1u);
  EXPECT_EQ(spans_of(obs::SpanKind::kListIo), 0u);

  // Sparse: extents spread over ~1 MiB > max_hull_bytes -> list I/O.
  ExtentList sparse;
  for (int i = 0; i < 16; ++i)
    sparse.push_back({static_cast<std::uint64_t>(i) * 65536, 256});
  Bytes sbuf(static_cast<std::size_t>(total_bytes(sparse)));
  before = f.stats().snapshot().wire_ops;
  f.readv(sparse, MutByteSpan(sbuf.data(), sbuf.size()));
  EXPECT_EQ(f.stats().snapshot().wire_ops - before, 1u);  // one list message
  EXPECT_EQ(spans_of(obs::SpanKind::kListIo), 1u);
  EXPECT_EQ(spans_of(obs::SpanKind::kSieve), 1u);  // unchanged

  std::size_t cursor = 0;
  for (const Extent& x : sparse) {
    EXPECT_EQ(0, std::memcmp(sbuf.data() + cursor, image.data() + x.offset,
                             static_cast<std::size_t>(x.len)));
    cursor += static_cast<std::size_t>(x.len);
  }
}

TEST_F(NoncontigTest, SieveWritePreservesHoleBytes) {
  Config cfg = base_config();
  cfg.sieve.enabled = true;
  cfg.sieve.mode = Config::Sieve::Mode::kSieve;
  SemplarFile f(fabric_, cfg, "/sieve/rmw",
                mpiio::kModeRead | mpiio::kModeWrite | mpiio::kModeCreate |
                    mpiio::kModeTrunc);
  Bytes image = Rng(23).bytes(8192);
  f.write_at(0, ByteSpan(image.data(), image.size()));

  const ExtentList xs{{100, 50}, {1000, 50}, {4000, 50}};
  const Bytes fresh = Rng(29).bytes(150);
  EXPECT_EQ(f.writev(xs, ByteSpan(fresh.data(), fresh.size())), 150u);

  // Model: only the extents change; the hull's holes keep the pre-image.
  std::size_t cursor = 0;
  for (const Extent& x : xs) {
    std::copy_n(fresh.data() + cursor, static_cast<std::size_t>(x.len),
                image.data() + x.offset);
    cursor += static_cast<std::size_t>(x.len);
  }
  Bytes round(image.size());
  EXPECT_EQ(f.read_at(0, MutByteSpan(round.data(), round.size())),
            round.size());
  EXPECT_EQ(round, image);
}

// --- accounting parity -----------------------------------------------------

TEST_F(NoncontigTest, SingleExtentReadvAccountsExactlyLikeReadAt) {
  Config cfg = base_config();
  cfg.obs.enabled = true;
  cfg.sieve.enabled = true;  // must not matter for a 1-extent list
  SemplarFile f(fabric_, cfg, "/parity/obj",
                mpiio::kModeRead | mpiio::kModeWrite | mpiio::kModeCreate |
                    mpiio::kModeTrunc);
  const Bytes image = Rng(31).bytes(32 * 1024);
  f.write_at(0, ByteSpan(image.data(), image.size()));

  struct Delta {
    std::uint64_t sync, reads, wire;
    std::size_t spans_sync_read, spans_sieve, spans_list;
  };
  const auto measure = [&](auto&& op) {
    const StatsSnapshot s0 = f.stats().snapshot();
    const std::size_t spans0 = f.tracer()->snapshot().size();
    op();
    const StatsSnapshot s1 = f.stats().snapshot();
    Delta d{};
    d.sync = s1.sync_calls - s0.sync_calls;
    d.reads = s1.bytes_read - s0.bytes_read;
    d.wire = s1.wire_ops - s0.wire_ops;
    const auto spans = f.tracer()->snapshot();
    for (std::size_t i = spans0; i < spans.size(); ++i) {
      if (spans[i].kind == obs::SpanKind::kSyncRead) ++d.spans_sync_read;
      if (spans[i].kind == obs::SpanKind::kSieve) ++d.spans_sieve;
      if (spans[i].kind == obs::SpanKind::kListIo) ++d.spans_list;
    }
    return d;
  };

  Bytes a(1024), b(1024);
  const Delta plain =
      measure([&] { f.read_at(512, MutByteSpan(a.data(), a.size())); });
  const Delta vec = measure(
      [&] { f.readv({{512, 1024}}, MutByteSpan(b.data(), b.size())); });

  EXPECT_EQ(a, b);
  EXPECT_EQ(plain.sync, vec.sync);
  EXPECT_EQ(plain.reads, vec.reads);
  EXPECT_EQ(plain.wire, vec.wire);
  EXPECT_EQ(plain.spans_sync_read, vec.spans_sync_read);
  EXPECT_EQ(vec.spans_sieve, 0u);   // delegation: no strategy span
  EXPECT_EQ(vec.spans_list, 0u);
}

// --- randomized property: strategies x cache vs a flat model ---------------

struct NoncontigCase {
  Config::Sieve::Mode mode;
  bool cached;
  bool async;
};

std::string noncontig_case_name(
    const ::testing::TestParamInfo<NoncontigCase>& info) {
  const char* m = "auto";
  switch (info.param.mode) {
    case Config::Sieve::Mode::kNaive: m = "naive"; break;
    case Config::Sieve::Mode::kSieve: m = "sieve"; break;
    case Config::Sieve::Mode::kList: m = "list"; break;
    case Config::Sieve::Mode::kAuto: m = "auto"; break;
  }
  return std::string(m) + (info.param.cached ? "_cached" : "_uncached") +
         (info.param.async ? "_async" : "_sync");
}

class NoncontigProperty : public NoncontigTest,
                          public ::testing::WithParamInterface<NoncontigCase> {};

TEST_P(NoncontigProperty, StridedViewMatchesFlatModel) {
  const NoncontigCase c = GetParam();
  Config cfg = base_config();
  cfg.sieve.enabled = true;
  cfg.sieve.mode = c.mode;
  cfg.sieve.max_hull_bytes = 16 * 1024;  // auto mode exercises both paths
  if (c.cached) {
    cfg.cache_bytes = 256 * 1024;
    cfg.cache_block_bytes = 16 * 1024;  // small blocks: exercise eviction
  }
  cfg.streams_per_node = 2;
  cfg.io_threads = 2;
  SrbfsDriver driver(fabric_, cfg);
  mpiio::File f(driver, "/prop/view",
                mpiio::kModeRead | mpiio::kModeWrite | mpiio::kModeCreate |
                    mpiio::kModeTrunc);

  Rng rng(static_cast<std::uint64_t>(c.mode) * 1000 + c.cached * 10 + c.async);
  Bytes model = rng.bytes(48 * 1024);
  f.write_at(0, ByteSpan(model.data(), model.size()));

  // Strided view: 64 visible bytes per 256-byte frame after a 128-byte
  // header; every mapped extent stays inside the 48 KiB image.
  const mpiio::FileView view{/*displacement=*/128, /*etype_bytes=*/16,
                             /*count=*/4, /*stride=*/256};
  f.set_view(view);

  const auto apply_model = [&](const ExtentList& xs, const Bytes& packed) {
    std::size_t cursor = 0;
    for (const Extent& x : xs) {
      std::copy_n(packed.data() + cursor, static_cast<std::size_t>(x.len),
                  model.data() + x.offset);
      cursor += static_cast<std::size_t>(x.len);
    }
  };
  const auto expect_model = [&](const ExtentList& xs, const Bytes& packed) {
    std::size_t cursor = 0;
    for (const Extent& x : xs) {
      ASSERT_EQ(0, std::memcmp(packed.data() + cursor, model.data() + x.offset,
                               static_cast<std::size_t>(x.len)));
      cursor += static_cast<std::size_t>(x.len);
    }
  };

  for (int it = 0; it < 24; ++it) {
    // View-relative range; bound so the last frame ends inside the image.
    const std::uint64_t vo = rng.below(6 * 1024);
    const std::uint64_t len = 1 + rng.below(2 * 1024);
    const ExtentList mapped = view.map(vo, len);
    Bytes buf(static_cast<std::size_t>(len));
    if (rng.chance(0.5)) {
      const Bytes data = rng.bytes(buf.size());
      if (c.async) {
        mpiio::IoRequest r =
            f.iwrite_at(vo, ByteSpan(data.data(), data.size()));
        ASSERT_EQ(r.wait(), data.size());
      } else {
        ASSERT_EQ(f.write_at(vo, ByteSpan(data.data(), data.size())),
                  data.size());
      }
      apply_model(mapped, data);
    } else {
      if (c.async) {
        mpiio::IoRequest r = f.iread_at(vo, MutByteSpan(buf.data(), buf.size()));
        ASSERT_EQ(r.wait(), buf.size());
      } else {
        ASSERT_EQ(f.read_at(vo, MutByteSpan(buf.data(), buf.size())),
                  buf.size());
      }
      expect_model(mapped, buf);
    }
  }

  // Direct vectored calls against hand-built lists (identity view).
  f.set_view(mpiio::FileView{});
  for (int it = 0; it < 12; ++it) {
    ExtentList xs;
    std::uint64_t cursor = rng.below(1024);
    const int n = static_cast<int>(1 + rng.below(24));
    for (int i = 0; i < n && cursor + 512 < model.size(); ++i) {
      const std::uint64_t len = 1 + rng.below(300);
      xs.push_back({cursor, len});
      cursor += len + 1 + rng.below(700);
    }
    if (xs.empty() || xs.back().end() > model.size()) continue;
    Bytes packed(static_cast<std::size_t>(total_bytes(xs)));
    if (rng.chance(0.5)) {
      const Bytes data = rng.bytes(packed.size());
      if (c.async) {
        mpiio::IoRequest r = f.iwritev(xs, ByteSpan(data.data(), data.size()));
        ASSERT_EQ(r.wait(), data.size());
      } else {
        ASSERT_EQ(f.writev(xs, ByteSpan(data.data(), data.size())),
                  data.size());
      }
      apply_model(xs, data);
    } else {
      if (c.async) {
        mpiio::IoRequest r = f.ireadv(xs, MutByteSpan(packed.data(), packed.size()));
        ASSERT_EQ(r.wait(), packed.size());
      } else {
        ASSERT_EQ(f.readv(xs, MutByteSpan(packed.data(), packed.size())),
                  packed.size());
      }
      expect_model(xs, packed);
    }
  }

  // Final full read-back equals the model byte for byte.
  f.flush();
  Bytes final_image(model.size());
  ASSERT_EQ(f.read_at(0, MutByteSpan(final_image.data(), final_image.size())),
            final_image.size());
  EXPECT_EQ(final_image, model);
  f.close();
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndCache, NoncontigProperty,
    ::testing::Values(
        NoncontigCase{Config::Sieve::Mode::kNaive, false, false},
        NoncontigCase{Config::Sieve::Mode::kSieve, false, false},
        NoncontigCase{Config::Sieve::Mode::kList, false, false},
        NoncontigCase{Config::Sieve::Mode::kAuto, false, true},
        NoncontigCase{Config::Sieve::Mode::kNaive, true, false},
        NoncontigCase{Config::Sieve::Mode::kSieve, true, true},
        NoncontigCase{Config::Sieve::Mode::kList, true, false},
        NoncontigCase{Config::Sieve::Mode::kAuto, true, true}),
    noncontig_case_name);

// --- the portable layer: validation, views, ufs fallback -------------------

class NoncontigUfsTest : public ::testing::Test {
 protected:
  NoncontigUfsTest() {
    root_ = std::filesystem::temp_directory_path() /
            ("remio_noncontig_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    driver_ = std::make_unique<mpiio::UfsDriver>(root_.string());
  }
  ~NoncontigUfsTest() override {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  static int counter_;
  std::filesystem::path root_;
  std::unique_ptr<mpiio::UfsDriver> driver_;
};

int NoncontigUfsTest::counter_ = 0;

TEST_F(NoncontigUfsTest, ValidatesListAndBufferSize) {
  mpiio::File f(*driver_, "/v", mpiio::kModeRead | mpiio::kModeWrite |
                                    mpiio::kModeCreate);
  Bytes buf(20);
  // Unsorted, overlapping, and empty-extent lists are rejected.
  EXPECT_THROW(f.readv({{10, 10}, {0, 10}}, MutByteSpan(buf.data(), 20)),
               mpiio::IoError);
  EXPECT_THROW(f.writev({{0, 15}, {10, 5}}, ByteSpan(buf.data(), 20)),
               mpiio::IoError);
  EXPECT_THROW(f.readv({{0, 0}}, MutByteSpan(buf.data(), 0)), mpiio::IoError);
  // Packed-buffer size must match total_bytes exactly.
  EXPECT_THROW(f.readv({{0, 10}}, MutByteSpan(buf.data(), 20)), mpiio::IoError);
  EXPECT_THROW(f.writev({{0, 10}, {20, 10}}, ByteSpan(buf.data(), 10)),
               mpiio::IoError);
  // Empty list is a no-op, not an error.
  EXPECT_EQ(f.readv({}, MutByteSpan(buf.data(), 0)), 0u);
  EXPECT_EQ(f.writev({}, ByteSpan(buf.data(), 0)), 0u);
  mpiio::IoRequest r = f.ireadv({}, MutByteSpan(buf.data(), 0));
  EXPECT_EQ(r.wait(), 0u);
  f.close();
}

TEST_F(NoncontigUfsTest, AsyncFallbackRunsVectoredVerbs) {
  mpiio::File f(*driver_, "/fb", mpiio::kModeRead | mpiio::kModeWrite |
                                     mpiio::kModeCreate);
  const Bytes image = Rng(37).bytes(4096);
  f.write_at(0, ByteSpan(image.data(), image.size()));

  const ExtentList xs{{16, 100}, {512, 200}, {2000, 50}};
  Bytes packed(350);
  mpiio::IoRequest r = f.ireadv(xs, MutByteSpan(packed.data(), packed.size()));
  EXPECT_EQ(r.wait(), 350u);
  std::size_t cursor = 0;
  for (const Extent& x : xs) {
    EXPECT_EQ(0, std::memcmp(packed.data() + cursor, image.data() + x.offset,
                             static_cast<std::size_t>(x.len)));
    cursor += static_cast<std::size_t>(x.len);
  }

  const Bytes fresh = Rng(41).bytes(350);
  mpiio::IoRequest w = f.iwritev(xs, ByteSpan(fresh.data(), fresh.size()));
  EXPECT_EQ(w.wait(), 350u);
  Bytes round(200);
  f.read_at(512, MutByteSpan(round.data(), 200));
  EXPECT_EQ(0, std::memcmp(round.data(), fresh.data() + 100, 200));
  f.close();
}

TEST_F(NoncontigUfsTest, ViewSemanticsOnFilePointerAndSeek) {
  mpiio::File f(*driver_, "/view", mpiio::kModeRead | mpiio::kModeWrite |
                                       mpiio::kModeCreate);
  Bytes image(1024, '\0');
  f.write_at(0, ByteSpan(image.data(), image.size()));

  const mpiio::FileView v{/*displacement=*/64, /*etype_bytes=*/8,
                          /*count=*/2, /*stride=*/64};
  f.set_view(v);
  EXPECT_EQ(f.seek(0, SEEK_CUR), 0u);  // set_view resets the file pointer

  // Two file-pointer writes land in consecutive view bytes = frames 0..1.
  const Bytes a = to_bytes("0123456789abcdef");  // one full frame
  const Bytes b = to_bytes("FEDCBA");
  f.write(ByteSpan(a.data(), a.size()));
  f.write(ByteSpan(b.data(), b.size()));
  EXPECT_EQ(f.seek(0, SEEK_CUR), 22u);

  Bytes raw(256);
  f.set_view(mpiio::FileView{});
  f.read_at(0, MutByteSpan(raw.data(), raw.size()));
  EXPECT_EQ(0, std::memcmp(raw.data() + 64, a.data(), 16));   // frame 0
  EXPECT_EQ(0, std::memcmp(raw.data() + 128, b.data(), 6));   // frame 1

  // SEEK_END is ill-defined under a strided view.
  f.set_view(v);
  EXPECT_THROW(f.seek(0, SEEK_END), mpiio::IoError);
  f.close();
}

TEST_F(NoncontigUfsTest, RejectsDegenerateView) {
  mpiio::File f(*driver_, "/badview", mpiio::kModeRead | mpiio::kModeWrite |
                                          mpiio::kModeCreate);
  mpiio::FileView bad{/*displacement=*/0, /*etype_bytes=*/4, /*count=*/4,
                      /*stride=*/8};  // stride < block
  EXPECT_THROW(f.set_view(bad), mpiio::IoError);
  f.close();
}

}  // namespace
}  // namespace remio::semplar
