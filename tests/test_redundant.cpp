// Redundant-read tests (§9 future work, implemented): correctness with 1..4
// streams, short reads at EOF, all-streams-failed error propagation, and
// the data-integrity invariant that losers never touch the caller's buffer.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/semplar.hpp"
#include "simnet/timescale.hpp"
#include "srb/server.hpp"

namespace remio::semplar {
namespace {

class RedundantReadTest : public ::testing::Test {
 protected:
  RedundantReadTest() : scale_(2000.0) {
    simnet::HostSpec server_host;
    server_host.name = "orion";
    fabric_.add_host(server_host);
    simnet::HostSpec node;
    node.name = "node0";
    node.latency_to_core = 0.002;
    fabric_.add_host(node);
    server_ = std::make_unique<srb::SrbServer>(fabric_, srb::ServerConfig{});
    server_->start();
  }

  std::unique_ptr<SemplarFile> open_file(int streams, const std::string& path,
                                         std::uint32_t mode) {
    Config cfg;
    cfg.client_host = "node0";
    cfg.streams_per_node = streams;
    cfg.io_threads = streams;  // parallel racers need parallel threads
    cfg.conn.tcp_window = 0;
    return std::make_unique<SemplarFile>(fabric_, cfg, path, mode);
  }

  simnet::ScopedTimeScale scale_;
  simnet::Fabric fabric_;
  std::unique_ptr<srb::SrbServer> server_;
};

TEST_F(RedundantReadTest, CorrectDataAcrossStreamCounts) {
  Rng rng(21);
  const Bytes data = rng.bytes(300 * 1024);
  {
    auto f = open_file(1, "/red/obj", mpiio::kModeWrite | mpiio::kModeCreate);
    f->write_at(0, ByteSpan(data.data(), data.size()));
  }
  for (int streams : {1, 2, 4}) {
    auto f = open_file(streams, "/red/obj", mpiio::kModeRead);
    Bytes out(data.size());
    mpiio::IoRequest req = f->iread_redundant(0, MutByteSpan(out.data(), out.size()));
    EXPECT_EQ(req.wait(), data.size()) << "streams=" << streams;
    EXPECT_EQ(out, data) << "streams=" << streams;
  }
}

TEST_F(RedundantReadTest, PartialRangeAndOffset) {
  const Bytes data = to_bytes("0123456789abcdef");
  {
    auto f = open_file(1, "/red/small", mpiio::kModeWrite | mpiio::kModeCreate);
    f->write_at(0, ByteSpan(data.data(), data.size()));
  }
  auto f = open_file(2, "/red/small", mpiio::kModeRead);
  Bytes out(6);
  EXPECT_EQ(f->iread_redundant(4, MutByteSpan(out.data(), out.size())).wait(), 6u);
  EXPECT_EQ(to_string(ByteSpan(out.data(), out.size())), "456789");
}

TEST_F(RedundantReadTest, ShortReadAtEof) {
  const Bytes data(1000, 'e');
  {
    auto f = open_file(1, "/red/eof", mpiio::kModeWrite | mpiio::kModeCreate);
    f->write_at(0, ByteSpan(data.data(), data.size()));
  }
  auto f = open_file(2, "/red/eof", mpiio::kModeRead);
  Bytes out(5000);
  EXPECT_EQ(f->iread_redundant(0, MutByteSpan(out.data(), out.size())).wait(), 1000u);
}

TEST_F(RedundantReadTest, RepeatedRacesStayConsistent) {
  Rng rng(22);
  const Bytes data = rng.bytes(64 * 1024);
  {
    auto f = open_file(1, "/red/race", mpiio::kModeWrite | mpiio::kModeCreate);
    f->write_at(0, ByteSpan(data.data(), data.size()));
  }
  auto f = open_file(3, "/red/race", mpiio::kModeRead);
  for (int i = 0; i < 10; ++i) {
    Bytes out(data.size());
    EXPECT_EQ(f->iread_redundant(0, MutByteSpan(out.data(), out.size())).wait(),
              data.size());
    EXPECT_EQ(out, data);
  }
}

TEST_F(RedundantReadTest, AllStreamsFailedSurfacesError) {
  auto f = open_file(2, "/red/gone", mpiio::kModeRead | mpiio::kModeWrite |
                                         mpiio::kModeCreate);
  server_->stop();
  Bytes out(128 * 1024);
  mpiio::IoRequest req = f->iread_redundant(0, MutByteSpan(out.data(), out.size()));
  EXPECT_ANY_THROW(req.wait());
}

TEST_F(RedundantReadTest, WireTrafficIsDuplicated) {
  const Bytes data(100 * 1024, 'd');
  {
    auto f = open_file(1, "/red/dup", mpiio::kModeWrite | mpiio::kModeCreate);
    f->write_at(0, ByteSpan(data.data(), data.size()));
  }
  auto f = open_file(2, "/red/dup", mpiio::kModeRead);
  Bytes out(data.size());
  f->iread_redundant(0, MutByteSpan(out.data(), out.size())).wait();
  f->flush();  // both racers done
  // Both streams carried the payload: total received >= 2x the data.
  EXPECT_GE(f->streams().wire_bytes_received(), 2 * data.size());
}

}  // namespace
}  // namespace remio::semplar
