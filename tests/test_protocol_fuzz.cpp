// Adversarial wire-protocol tests: the broker must survive malformed,
// hostile and truncated frames from raw sockets — sessions terminate
// cleanly, the server stays up, and well-behaved clients keep working.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/checksum.hpp"
#include "common/rng.hpp"
#include "simnet/timescale.hpp"
#include "srb/client.hpp"
#include "srb/server.hpp"

namespace remio::srb {
namespace {

class ProtocolFuzzTest : public ::testing::Test {
 protected:
  ProtocolFuzzTest() : scale_(5000.0) {
    simnet::HostSpec server_host;
    server_host.name = "orion";
    fabric_.add_host(server_host);
    simnet::HostSpec node;
    node.name = "evil";
    fabric_.add_host(node);
    server_ = std::make_unique<SrbServer>(fabric_, ServerConfig{});
    server_->start();
  }

  std::unique_ptr<simnet::Socket> raw_connect() {
    return fabric_.connect("evil", "orion", 5544);
  }

  /// The canary: a well-behaved client round trip must still succeed.
  void expect_server_alive() {
    SrbClient client(fabric_, "evil", "orion", 5544);
    const auto fd = client.open("/alive", kRead | kWrite | kCreate);
    const Bytes data = to_bytes("ping");
    EXPECT_EQ(client.pwrite(fd, ByteSpan(data.data(), data.size()), 0), 4u);
    client.close(fd);
    client.unlink("/alive");
  }

  simnet::ScopedTimeScale scale_;
  simnet::Fabric fabric_;
  std::unique_ptr<SrbServer> server_;
};

TEST_F(ProtocolFuzzTest, ZeroLengthFrame) {
  auto sock = raw_connect();
  const char zeros[4] = {0, 0, 0, 0};  // len = 0 is illegal
  sock->send_all(ByteSpan(zeros, 4));
  char byte;
  EXPECT_EQ(sock->recv_some(MutByteSpan(&byte, 1)), 0u);  // session closed
  expect_server_alive();
}

TEST_F(ProtocolFuzzTest, OversizedLengthRejected) {
  auto sock = raw_connect();
  Bytes msg;
  ByteWriter w(msg);
  w.u32(0xffffffffu);  // 4 GiB claim
  sock->send_all(ByteSpan(msg.data(), msg.size()));
  char byte;
  EXPECT_EQ(sock->recv_some(MutByteSpan(&byte, 1)), 0u);
  expect_server_alive();
}

TEST_F(ProtocolFuzzTest, UnknownOpcode) {
  auto sock = raw_connect();
  Bytes msg;
  ByteWriter w(msg);
  w.u32(1);
  w.u8(0xee);  // no such op
  sock->send_all(ByteSpan(msg.data(), msg.size()));
  // The server replies with a protocol error, then closes.
  Bytes reply(16);
  (void)sock->recv_some(MutByteSpan(reply.data(), reply.size()));
  expect_server_alive();
}

TEST_F(ProtocolFuzzTest, TruncatedPayloads) {
  // Each op with an empty body: every handler must reject cleanly.
  for (const auto op : {Op::kObjOpen, Op::kObjClose, Op::kObjRead, Op::kObjWrite,
                        Op::kObjSeek, Op::kObjStat, Op::kObjUnlink, Op::kCollCreate,
                        Op::kCollList, Op::kSetAttr, Op::kGetAttr}) {
    auto sock = raw_connect();
    Bytes msg;
    ByteWriter w(msg);
    w.u32(1);
    w.u8(static_cast<std::uint8_t>(op));
    sock->send_all(ByteSpan(msg.data(), msg.size()));
    Bytes reply(64);
    (void)sock->recv_some(MutByteSpan(reply.data(), reply.size()));
  }
  expect_server_alive();
}

TEST_F(ProtocolFuzzTest, HostileStringLength) {
  // kObjOpen with a string length prefix far beyond the frame.
  auto sock = raw_connect();
  Bytes msg;
  ByteWriter w(msg);
  w.u32(1 + 4 + 2);
  w.u8(static_cast<std::uint8_t>(Op::kObjOpen));
  w.u32(0x7fffffff);  // claimed path length
  w.raw(to_bytes("ab"));
  sock->send_all(ByteSpan(msg.data(), msg.size()));
  Bytes reply(64);
  (void)sock->recv_some(MutByteSpan(reply.data(), reply.size()));
  expect_server_alive();
}

TEST_F(ProtocolFuzzTest, MidFrameDisconnect) {
  auto sock = raw_connect();
  Bytes msg;
  ByteWriter w(msg);
  w.u32(1000);  // promise 1000 bytes...
  w.u8(static_cast<std::uint8_t>(Op::kObjOpen));
  sock->send_all(ByteSpan(msg.data(), msg.size()));
  sock->close();  // ...deliver 1 and hang up
  expect_server_alive();
}

TEST_F(ProtocolFuzzTest, RandomGarbageStream) {
  Rng rng(1234);
  for (int round = 0; round < 20; ++round) {
    auto sock = raw_connect();
    const Bytes junk = rng.bytes(8 + rng.below(256));
    try {
      sock->send_all(ByteSpan(junk.data(), junk.size()));
      sock->shutdown_send();
      Bytes reply(64);
      while (sock->recv_some(MutByteSpan(reply.data(), reply.size())) > 0) {
      }
    } catch (const simnet::NetError&) {
      // Server may slam the connection mid-send; that's a valid outcome.
    }
  }
  expect_server_alive();
}

// ---------------------------------------------------------------------------
// List-I/O verb fuzz (kObjReadList / kObjWriteList). Every frame below is
// *fully framed* — the length prefix is honoured — so any inconsistency
// inside it is semantic: the server must answer kInvalid and KEEP the
// session (asserted by issuing a well-formed op on the same socket after).
// ---------------------------------------------------------------------------

class ListVerbFuzzTest : public ProtocolFuzzTest {
 protected:
  /// One framed request/response round trip on a raw socket.
  Status roundtrip(simnet::Socket& sock, Op op, const Bytes& body,
                   Bytes* resp_body = nullptr) {
    send_frame(sock, static_cast<std::uint8_t>(op),
               ByteSpan(body.data(), body.size()));
    Bytes frame;
    EXPECT_TRUE(recv_frame(sock, frame)) << "session dropped";
    ByteReader r(ByteSpan(frame.data(), frame.size()));
    const auto st = static_cast<Status>(r.i32());
    if (resp_body != nullptr) {
      const ByteSpan rest = r.rest();
      resp_body->assign(rest.begin(), rest.end());
    }
    return st;
  }

  /// Opens an object through raw frames; returns the session-local fd.
  std::int32_t raw_open(simnet::Socket& sock, const std::string& path) {
    Bytes body;
    ByteWriter w(body);
    w.str(path);
    w.u32(kRead | kWrite | kCreate);
    Bytes resp;
    EXPECT_EQ(roundtrip(sock, Op::kObjOpen, body, &resp), Status::kOk);
    ByteReader r(ByteSpan(resp.data(), resp.size()));
    return r.i32();
  }

  /// The same-session canary: a valid 1-extent write list must succeed.
  void expect_session_alive(simnet::Socket& sock, std::int32_t fd) {
    Bytes body;
    ByteWriter w(body);
    w.i32(fd);
    w.u32(1);
    w.u64(0);
    w.u32(4);
    w.raw(to_bytes("ping"));
    EXPECT_EQ(roundtrip(sock, Op::kObjWriteList, body), Status::kOk);
  }

  /// Encodes fd + count + the given (offset,len) pairs.
  static Bytes list_header(std::int32_t fd, std::uint32_t count,
                           const std::vector<std::pair<std::uint64_t,
                                                       std::uint32_t>>& ext) {
    Bytes body;
    ByteWriter w(body);
    w.i32(fd);
    w.u32(count);
    for (const auto& [off, len] : ext) {
      w.u64(off);
      w.u32(len);
    }
    return body;
  }
};

TEST_F(ListVerbFuzzTest, TruncatedExtentArrayRejectedKeepsSession) {
  // Claims 16 extents, delivers 2 — a complete frame with a short array.
  auto sock = raw_connect();
  const std::int32_t fd = raw_open(*sock, "/lv/trunc");
  for (const auto op : {Op::kObjReadList, Op::kObjWriteList}) {
    const Bytes body = list_header(fd, 16, {{0, 64}, {64, 64}});
    EXPECT_EQ(roundtrip(*sock, op, body), Status::kInvalid);
  }
  expect_session_alive(*sock, fd);
  expect_server_alive();
}

TEST_F(ListVerbFuzzTest, CountAboveCapRejectedKeepsSession) {
  auto sock = raw_connect();
  const std::int32_t fd = raw_open(*sock, "/lv/cap");
  for (const auto op : {Op::kObjReadList, Op::kObjWriteList}) {
    for (const std::uint32_t count :
         {kMaxListExtents + 1, kMaxListExtents + 4096, 0xffffffffu}) {
      const Bytes body = list_header(fd, count, {{0, 8}});
      EXPECT_EQ(roundtrip(*sock, op, body), Status::kInvalid) << count;
    }
    // count == 0 is equally invalid.
    EXPECT_EQ(roundtrip(*sock, op, list_header(fd, 0, {})), Status::kInvalid);
  }
  expect_session_alive(*sock, fd);
  expect_server_alive();
}

TEST_F(ListVerbFuzzTest, UnsortedExtentsRejectedKeepsSession) {
  auto sock = raw_connect();
  const std::int32_t fd = raw_open(*sock, "/lv/unsorted");
  for (const auto op : {Op::kObjReadList, Op::kObjWriteList}) {
    const Bytes body = list_header(fd, 2, {{4096, 64}, {0, 64}});
    EXPECT_EQ(roundtrip(*sock, op, body), Status::kInvalid);
  }
  expect_session_alive(*sock, fd);
  expect_server_alive();
}

TEST_F(ListVerbFuzzTest, OverlappingExtentsRejectedKeepsSession) {
  auto sock = raw_connect();
  const std::int32_t fd = raw_open(*sock, "/lv/overlap");
  for (const auto op : {Op::kObjReadList, Op::kObjWriteList}) {
    // Sorted by offset but [0,100) overlaps [50,150).
    const Bytes body = list_header(fd, 2, {{0, 100}, {50, 100}});
    EXPECT_EQ(roundtrip(*sock, op, body), Status::kInvalid);
  }
  expect_session_alive(*sock, fd);
  expect_server_alive();
}

TEST_F(ListVerbFuzzTest, ZeroLengthExtentRejectedKeepsSession) {
  auto sock = raw_connect();
  const std::int32_t fd = raw_open(*sock, "/lv/zero");
  for (const auto op : {Op::kObjReadList, Op::kObjWriteList}) {
    for (const auto& ext :
         std::vector<std::vector<std::pair<std::uint64_t, std::uint32_t>>>{
             {{0, 0}}, {{0, 64}, {64, 0}, {128, 64}}}) {
      const Bytes body =
          list_header(fd, static_cast<std::uint32_t>(ext.size()), ext);
      EXPECT_EQ(roundtrip(*sock, op, body), Status::kInvalid);
    }
  }
  expect_session_alive(*sock, fd);
  expect_server_alive();
}

TEST_F(ListVerbFuzzTest, WriteListPayloadMismatchRejectedKeepsSession) {
  auto sock = raw_connect();
  const std::int32_t fd = raw_open(*sock, "/lv/mismatch");
  // Extents promise 128 bytes; deliver 5 (short) and 200 (long).
  for (const std::size_t payload : {std::size_t{5}, std::size_t{200}}) {
    Bytes body = list_header(fd, 2, {{0, 64}, {64, 64}});
    ByteWriter w(body);
    const Bytes junk(payload, 'x');
    w.raw(ByteSpan(junk.data(), junk.size()));
    EXPECT_EQ(roundtrip(*sock, Op::kObjWriteList, body), Status::kInvalid)
        << payload;
  }
  expect_session_alive(*sock, fd);
  expect_server_alive();
}

TEST_F(ListVerbFuzzTest, ReadListSumAboveReplyCapRejectedKeepsSession) {
  auto sock = raw_connect();
  const std::int32_t fd = raw_open(*sock, "/lv/replycap");
  // 33 extents of 2 MiB = 66 MiB > kMaxMessage / 2.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ext;
  for (std::uint64_t i = 0; i < 33; ++i) ext.push_back({i << 21, 2u << 20});
  const Bytes body = list_header(fd, 33, ext);
  EXPECT_EQ(roundtrip(*sock, Op::kObjReadList, body), Status::kInvalid);
  expect_session_alive(*sock, fd);
  expect_server_alive();
}

TEST_F(ListVerbFuzzTest, RandomizedListFrameFuzzNeverKillsSession) {
  // Random counts / extents / payload sizes, always fully framed: whatever
  // the semantic verdict, the session must answer every frame and survive.
  auto sock = raw_connect();
  const std::int32_t fd = raw_open(*sock, "/lv/random");
  Rng rng(20260807);
  for (int i = 0; i < 200; ++i) {
    const auto op = rng.chance(0.5) ? Op::kObjReadList : Op::kObjWriteList;
    const std::uint32_t count = static_cast<std::uint32_t>(rng.below(12));
    const std::uint32_t encoded =
        rng.chance(0.2) ? count + static_cast<std::uint32_t>(rng.below(5000))
                        : count;
    Bytes body;
    ByteWriter w(body);
    w.i32(rng.chance(0.9) ? fd : static_cast<std::int32_t>(rng.below(100)));
    w.u32(encoded);
    std::uint64_t off = rng.below(1 << 20);
    for (std::uint32_t e = 0; e < count; ++e) {
      // Mostly sorted-disjoint, sometimes hostile.
      if (rng.chance(0.15)) off = rng.below(1 << 20);
      const std::uint32_t len = static_cast<std::uint32_t>(rng.below(512));
      w.u64(off);
      w.u32(len);
      off += len;
    }
    if (op == Op::kObjWriteList) {
      const Bytes junk = rng.bytes(rng.below(4096));
      w.raw(ByteSpan(junk.data(), junk.size()));
    }
    (void)roundtrip(*sock, op, body);  // any status; session must answer
  }
  expect_session_alive(*sock, fd);
  expect_server_alive();
}

// ---------------------------------------------------------------------------
// Structure-aware corruption fuzz: single-bit flips aimed at each region of
// a checksummed frame — opcode, payload body, CRC trailer, and the length
// prefix. The contract under test: NO flipped frame is ever dispatched
// (wrong data must never land in the store); in-phase flips (anything the
// trailer covers) are answered kChecksumMismatch with the session intact,
// and length-prefix flips — which destroy framing itself — cost at most the
// session, never the server and never the data.
// ---------------------------------------------------------------------------

class CorruptionFuzzTest : public ProtocolFuzzTest {
 protected:
  /// kConnect with the checksum feature flag over raw frames; returns true
  /// when the server granted it (it must, by default).
  bool raw_connect_crc(simnet::Socket& sock) {
    Bytes body;
    ByteWriter w(body);
    w.str("corruption-fuzz");
    w.str("");  // no tenant
    w.u32(kFeatureWireChecksums);
    send_frame(sock, static_cast<std::uint8_t>(Op::kConnect),
               ByteSpan(body.data(), body.size()));
    Bytes frame;
    if (!recv_frame(sock, frame)) return false;
    ByteReader r(ByteSpan(frame.data(), frame.size()));
    if (static_cast<Status>(r.i32()) != Status::kOk) return false;
    (void)r.str();  // banner
    return r.remaining() >= 4 && (r.u32() & kFeatureWireChecksums) != 0;
  }

  /// Builds the exact bytes a checksummed request occupies on the wire.
  static Bytes build_crc_frame(Op op, const Bytes& body) {
    Bytes frame;
    ByteWriter w(frame);
    w.u32(static_cast<std::uint32_t>(1 + body.size() + 4));
    w.u8(static_cast<std::uint8_t>(op));
    w.raw(ByteSpan(body.data(), body.size()));
    w.u32(crc32c(ByteSpan(frame.data() + 4, frame.size() - 4)));
    return frame;
  }

  /// Sends a pristine checksummed request, verifies the response trailer,
  /// returns the status.
  Status crc_roundtrip(simnet::Socket& sock, Op op, const Bytes& body,
                       Bytes* resp_body = nullptr) {
    send_frame_crc(sock, static_cast<std::uint8_t>(op),
                   ByteSpan(body.data(), body.size()));
    Bytes frame;
    EXPECT_TRUE(recv_frame(sock, frame)) << "session dropped";
    EXPECT_TRUE(strip_frame_crc(frame)) << "response trailer corrupt";
    ByteReader r(ByteSpan(frame.data(), frame.size()));
    const auto st = static_cast<Status>(r.i32());
    if (resp_body != nullptr) {
      const ByteSpan rest = r.rest();
      resp_body->assign(rest.begin(), rest.end());
    }
    return st;
  }

  std::int32_t crc_open(simnet::Socket& sock, const std::string& path) {
    Bytes body;
    ByteWriter w(body);
    w.str(path);
    w.u32(kRead | kWrite | kCreate);
    Bytes resp;
    EXPECT_EQ(crc_roundtrip(sock, Op::kObjOpen, body, &resp), Status::kOk);
    ByteReader r(ByteSpan(resp.data(), resp.size()));
    return r.i32();
  }

  /// A kObjWrite request body: fd, offset, payload.
  static Bytes write_body(std::int32_t fd, std::uint64_t offset,
                          const Bytes& payload) {
    Bytes body;
    ByteWriter w(body);
    w.i32(fd);
    w.i64(static_cast<std::int64_t>(offset));
    w.blob(ByteSpan(payload.data(), payload.size()));
    return body;
  }
};

TEST_F(CorruptionFuzzTest, EveryInPhaseBitFlipDetectedInRhythm) {
  auto sock = raw_connect();
  ASSERT_TRUE(raw_connect_crc(*sock));
  const std::int32_t fd = crc_open(*sock, "/fuzz/flip");

  // Baseline content the mutations must never be able to change.
  const Bytes baseline(512, 'B');
  ASSERT_EQ(crc_roundtrip(*sock, Op::kObjWrite, write_body(fd, 0, baseline)),
            Status::kOk);

  const Bytes evil(512, 'E');
  const Bytes pristine = build_crc_frame(Op::kObjWrite, write_body(fd, 0, evil));
  Rng rng(0xf11bf11bu);
  int header_flips = 0, payload_flips = 0, trailer_flips = 0;
  for (int round = 0; round < 300; ++round) {
    // Aim deliberately: opcode byte, CRC trailer, or anywhere in the body.
    std::size_t byte;
    const int region = static_cast<int>(rng.below(3));
    if (region == 0) {
      byte = 4;  // opcode
      ++header_flips;
    } else if (region == 1) {
      byte = pristine.size() - 4 + rng.below(4);  // trailer
      ++trailer_flips;
    } else {
      byte = 5 + rng.below(pristine.size() - 5 - 4);  // body
      ++payload_flips;
    }
    Bytes mutated = pristine;
    mutated[byte] ^= static_cast<char>(1u << rng.below(8));

    sock->send_all(ByteSpan(mutated.data(), mutated.size()));
    Bytes frame;
    ASSERT_TRUE(recv_frame(*sock, frame)) << "session died on round " << round;
    ASSERT_TRUE(strip_frame_crc(frame));
    ByteReader r(ByteSpan(frame.data(), frame.size()));
    // Every single-bit flip the trailer covers (and flips OF the trailer)
    // must be rejected as a checksum mismatch — by CRC's single-bit-error
    // guarantee there are no collisions to worry about.
    ASSERT_EQ(static_cast<Status>(r.i32()), Status::kChecksumMismatch)
        << "round " << round << " byte " << byte;
  }
  EXPECT_GT(header_flips, 0);
  EXPECT_GT(payload_flips, 0);
  EXPECT_GT(trailer_flips, 0);

  // In-rhythm recovery: the very same session still serves, and none of the
  // 300 corrupted writes leaked a byte into the store.
  Bytes body;
  ByteWriter w(body);
  w.i32(fd);
  w.i64(0);
  w.u32(512);
  Bytes resp;
  ASSERT_EQ(crc_roundtrip(*sock, Op::kObjRead, body, &resp), Status::kOk);
  ByteReader r(ByteSpan(resp.data(), resp.size()));
  const Bytes back = r.blob();
  EXPECT_EQ(back, baseline);
  expect_server_alive();
}

TEST_F(CorruptionFuzzTest, LengthPrefixFlipsNeverLandData) {
  // Flips in the 4-byte length prefix sit OUTSIDE the checksum (by design:
  // covering it would desync framing on every detection). Such a flip can
  // legitimately kill the session — but it must never produce a dispatched
  // frame, and the server must survive.
  const Bytes baseline(256, 'B');
  {
    auto setup = raw_connect();
    ASSERT_TRUE(raw_connect_crc(*setup));
    const std::int32_t fd = crc_open(*setup, "/fuzz/len");
    ASSERT_EQ(crc_roundtrip(*setup, Op::kObjWrite, write_body(fd, 0, baseline)),
              Status::kOk);
  }

  Rng rng(0x1e471e47u);
  for (int round = 0; round < 32; ++round) {
    auto sock = raw_connect();
    ASSERT_TRUE(raw_connect_crc(*sock));
    const std::int32_t fd = crc_open(*sock, "/fuzz/len");
    const Bytes evil(256, 'E');
    Bytes mutated = build_crc_frame(Op::kObjWrite, write_body(fd, 0, evil));
    mutated[rng.below(4)] ^= static_cast<char>(1u << rng.below(8));
    try {
      sock->send_all(ByteSpan(mutated.data(), mutated.size()));
      sock->shutdown_send();  // a bigger claimed length now reads as EOF
      Bytes drain(256);
      while (sock->recv_some(MutByteSpan(drain.data(), drain.size())) > 0) {
      }
    } catch (const simnet::NetError&) {
      // Server slammed the session: acceptable for a framing-level fault.
    }
  }

  // However the 32 sessions ended, the evil payload never landed.
  auto sock = raw_connect();
  ASSERT_TRUE(raw_connect_crc(*sock));
  const std::int32_t fd = crc_open(*sock, "/fuzz/len");
  Bytes body;
  ByteWriter w(body);
  w.i32(fd);
  w.i64(0);
  w.u32(256);
  Bytes resp;
  ASSERT_EQ(crc_roundtrip(*sock, Op::kObjRead, body, &resp), Status::kOk);
  ByteReader r(ByteSpan(resp.data(), resp.size()));
  EXPECT_EQ(r.blob(), baseline);
  expect_server_alive();
}

TEST_F(CorruptionFuzzTest, MultiBitRandomMutationsNeverLandData) {
  // Beyond the single-bit guarantee: arbitrary k-bit mutations of one frame
  // (k in 1..8). A pathological collision would be caught here as a silent
  // acceptance of wrong data, which the baseline read-back would expose.
  auto sock = raw_connect();
  ASSERT_TRUE(raw_connect_crc(*sock));
  const std::int32_t fd = crc_open(*sock, "/fuzz/multi");
  const Bytes baseline(384, 'B');
  ASSERT_EQ(crc_roundtrip(*sock, Op::kObjWrite, write_body(fd, 0, baseline)),
            Status::kOk);

  const Bytes evil(384, 'E');
  const Bytes pristine = build_crc_frame(Op::kObjWrite, write_body(fd, 0, evil));
  Rng rng(0x5eed5eedu);
  for (int round = 0; round < 200; ++round) {
    Bytes mutated = pristine;
    const std::size_t flips = 1 + rng.below(8);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t byte = 4 + rng.below(mutated.size() - 4);
      mutated[byte] ^= static_cast<char>(1u << rng.below(8));
    }
    sock->send_all(ByteSpan(mutated.data(), mutated.size()));
    Bytes frame;
    ASSERT_TRUE(recv_frame(*sock, frame));
    ASSERT_TRUE(strip_frame_crc(frame));
    ByteReader r(ByteSpan(frame.data(), frame.size()));
    ASSERT_EQ(static_cast<Status>(r.i32()), Status::kChecksumMismatch)
        << "round " << round;
  }

  Bytes body;
  ByteWriter w(body);
  w.i32(fd);
  w.i64(0);
  w.u32(384);
  Bytes resp;
  ASSERT_EQ(crc_roundtrip(*sock, Op::kObjRead, body, &resp), Status::kOk);
  ByteReader r(ByteSpan(resp.data(), resp.size()));
  EXPECT_EQ(r.blob(), baseline);
  expect_server_alive();
}

TEST_F(ProtocolFuzzTest, ReadLengthAboveCapRejected) {
  // A read request asking for more than the server's per-message cap.
  SrbClient client(fabric_, "evil", "orion", 5544);
  const auto fd = client.open("/cap", kRead | kWrite | kCreate);
  auto sock = raw_connect();  // separate raw session with its own connect
  Bytes msg;
  ByteWriter w(msg);
  w.u32(1 + 4 + 8 + 4);
  w.u8(static_cast<std::uint8_t>(Op::kObjRead));
  w.i32(fd);  // fd from another session: either bad-fd or proto error is fine
  w.i64(0);
  w.u32(kMaxMessage);  // over the cap
  sock->send_all(ByteSpan(msg.data(), msg.size()));
  Bytes reply(64);
  (void)sock->recv_some(MutByteSpan(reply.data(), reply.size()));
  client.close(fd);
  expect_server_alive();
}

}  // namespace
}  // namespace remio::srb
