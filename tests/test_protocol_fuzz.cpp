// Adversarial wire-protocol tests: the broker must survive malformed,
// hostile and truncated frames from raw sockets — sessions terminate
// cleanly, the server stays up, and well-behaved clients keep working.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "simnet/timescale.hpp"
#include "srb/client.hpp"
#include "srb/server.hpp"

namespace remio::srb {
namespace {

class ProtocolFuzzTest : public ::testing::Test {
 protected:
  ProtocolFuzzTest() : scale_(5000.0) {
    simnet::HostSpec server_host;
    server_host.name = "orion";
    fabric_.add_host(server_host);
    simnet::HostSpec node;
    node.name = "evil";
    fabric_.add_host(node);
    server_ = std::make_unique<SrbServer>(fabric_, ServerConfig{});
    server_->start();
  }

  std::unique_ptr<simnet::Socket> raw_connect() {
    return fabric_.connect("evil", "orion", 5544);
  }

  /// The canary: a well-behaved client round trip must still succeed.
  void expect_server_alive() {
    SrbClient client(fabric_, "evil", "orion", 5544);
    const auto fd = client.open("/alive", kRead | kWrite | kCreate);
    const Bytes data = to_bytes("ping");
    EXPECT_EQ(client.pwrite(fd, ByteSpan(data.data(), data.size()), 0), 4u);
    client.close(fd);
    client.unlink("/alive");
  }

  simnet::ScopedTimeScale scale_;
  simnet::Fabric fabric_;
  std::unique_ptr<SrbServer> server_;
};

TEST_F(ProtocolFuzzTest, ZeroLengthFrame) {
  auto sock = raw_connect();
  const char zeros[4] = {0, 0, 0, 0};  // len = 0 is illegal
  sock->send_all(ByteSpan(zeros, 4));
  char byte;
  EXPECT_EQ(sock->recv_some(MutByteSpan(&byte, 1)), 0u);  // session closed
  expect_server_alive();
}

TEST_F(ProtocolFuzzTest, OversizedLengthRejected) {
  auto sock = raw_connect();
  Bytes msg;
  ByteWriter w(msg);
  w.u32(0xffffffffu);  // 4 GiB claim
  sock->send_all(ByteSpan(msg.data(), msg.size()));
  char byte;
  EXPECT_EQ(sock->recv_some(MutByteSpan(&byte, 1)), 0u);
  expect_server_alive();
}

TEST_F(ProtocolFuzzTest, UnknownOpcode) {
  auto sock = raw_connect();
  Bytes msg;
  ByteWriter w(msg);
  w.u32(1);
  w.u8(0xee);  // no such op
  sock->send_all(ByteSpan(msg.data(), msg.size()));
  // The server replies with a protocol error, then closes.
  Bytes reply(16);
  (void)sock->recv_some(MutByteSpan(reply.data(), reply.size()));
  expect_server_alive();
}

TEST_F(ProtocolFuzzTest, TruncatedPayloads) {
  // Each op with an empty body: every handler must reject cleanly.
  for (const auto op : {Op::kObjOpen, Op::kObjClose, Op::kObjRead, Op::kObjWrite,
                        Op::kObjSeek, Op::kObjStat, Op::kObjUnlink, Op::kCollCreate,
                        Op::kCollList, Op::kSetAttr, Op::kGetAttr}) {
    auto sock = raw_connect();
    Bytes msg;
    ByteWriter w(msg);
    w.u32(1);
    w.u8(static_cast<std::uint8_t>(op));
    sock->send_all(ByteSpan(msg.data(), msg.size()));
    Bytes reply(64);
    (void)sock->recv_some(MutByteSpan(reply.data(), reply.size()));
  }
  expect_server_alive();
}

TEST_F(ProtocolFuzzTest, HostileStringLength) {
  // kObjOpen with a string length prefix far beyond the frame.
  auto sock = raw_connect();
  Bytes msg;
  ByteWriter w(msg);
  w.u32(1 + 4 + 2);
  w.u8(static_cast<std::uint8_t>(Op::kObjOpen));
  w.u32(0x7fffffff);  // claimed path length
  w.raw(to_bytes("ab"));
  sock->send_all(ByteSpan(msg.data(), msg.size()));
  Bytes reply(64);
  (void)sock->recv_some(MutByteSpan(reply.data(), reply.size()));
  expect_server_alive();
}

TEST_F(ProtocolFuzzTest, MidFrameDisconnect) {
  auto sock = raw_connect();
  Bytes msg;
  ByteWriter w(msg);
  w.u32(1000);  // promise 1000 bytes...
  w.u8(static_cast<std::uint8_t>(Op::kObjOpen));
  sock->send_all(ByteSpan(msg.data(), msg.size()));
  sock->close();  // ...deliver 1 and hang up
  expect_server_alive();
}

TEST_F(ProtocolFuzzTest, RandomGarbageStream) {
  Rng rng(1234);
  for (int round = 0; round < 20; ++round) {
    auto sock = raw_connect();
    const Bytes junk = rng.bytes(8 + rng.below(256));
    try {
      sock->send_all(ByteSpan(junk.data(), junk.size()));
      sock->shutdown_send();
      Bytes reply(64);
      while (sock->recv_some(MutByteSpan(reply.data(), reply.size())) > 0) {
      }
    } catch (const simnet::NetError&) {
      // Server may slam the connection mid-send; that's a valid outcome.
    }
  }
  expect_server_alive();
}

TEST_F(ProtocolFuzzTest, ReadLengthAboveCapRejected) {
  // A read request asking for more than the server's per-message cap.
  SrbClient client(fabric_, "evil", "orion", 5544);
  const auto fd = client.open("/cap", kRead | kWrite | kCreate);
  auto sock = raw_connect();  // separate raw session with its own connect
  Bytes msg;
  ByteWriter w(msg);
  w.u32(1 + 4 + 8 + 4);
  w.u8(static_cast<std::uint8_t>(Op::kObjRead));
  w.i32(fd);  // fd from another session: either bad-fd or proto error is fine
  w.i64(0);
  w.u32(kMaxMessage);  // over the cap
  sock->send_all(ByteSpan(msg.data(), msg.size()));
  Bytes reply(64);
  (void)sock->recv_some(MutByteSpan(reply.data(), reply.size()));
  client.close(fd);
  expect_server_alive();
}

}  // namespace
}  // namespace remio::srb
