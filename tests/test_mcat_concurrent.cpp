// Concurrent MCAT battery: randomized multi-thread
// register/resolve/unregister/set_attr/list storms checked against the
// single-mutex FlatMcat reference (src/srb/mcat_flat.hpp). Deliberately
// NOT timing-labelled so the TSan CI lane runs every storm — this suite is
// the pin that the lock-striped catalog refactor must pass unchanged.
//
// Checking strategy: a concurrent run cannot be diffed against a
// sequential model op-for-op (interleavings differ), so the storms use
// per-thread disjoint namespaces — each thread's op sequence is then
// independent and is replayed verbatim against a fresh FlatMcat after the
// join. Object ids are compared through a per-thread bijection (the
// sharded catalog draws ids from one global counter, so absolute values
// differ across threads). Cross-thread interference is exercised
// separately with shared-hot-key storms checked by invariant.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "srb/mcat.hpp"
#include "srb/mcat_flat.hpp"

namespace remio::srb {
namespace {

// ---------------------------------------------------------------------------
// Op log: one thread's totally-ordered interaction with the catalog.
// ---------------------------------------------------------------------------

enum class McatOp : int {
  kRegister = 0,
  kResolve,
  kUnregister,
  kSetAttr,
  kGetAttr,
  kMakeColl,
  kCollExists,
  kList,
  kMeta,
  kCount
};

struct LoggedOp {
  McatOp op;
  std::string path;
  std::string key;    // set_attr/get_attr
  std::string value;  // set_attr
  // Result signature recorded from the DUT run.
  bool flag = false;                      // bool results / has_value
  std::optional<ObjectId> id;             // register/resolve/unregister/meta
  std::optional<std::string> attr;        // get_attr
  std::vector<std::string> listing;       // list (sorted before compare)
};

/// Maps DUT object ids to model object ids, insisting on a bijection: the
/// same DUT id must always map to the same model id and vice versa.
class IdBijection {
 public:
  void check(std::optional<ObjectId> dut, std::optional<ObjectId> model) {
    ASSERT_EQ(dut.has_value(), model.has_value());
    if (!dut) return;
    const auto [it, fresh] = fwd_.emplace(*dut, *model);
    ASSERT_EQ(it->second, *model) << "dut id " << *dut << " remapped";
    const auto [rit, rfresh] = rev_.emplace(*model, *dut);
    ASSERT_EQ(rit->second, *dut) << "model id " << *model << " remapped";
    (void)fresh;
    (void)rfresh;
  }

 private:
  std::map<ObjectId, ObjectId> fwd_;
  std::map<ObjectId, ObjectId> rev_;
};

/// Runs one random op against `m`, recording args + result signature.
template <typename Catalog>
LoggedOp random_op(Catalog& m, Rng& rng, const std::string& root, int keys) {
  LoggedOp lo;
  lo.op = static_cast<McatOp>(rng.below(static_cast<std::uint64_t>(McatOp::kCount)));
  const int k = static_cast<int>(rng.below(static_cast<std::uint64_t>(keys)));
  const bool deep = rng.chance(0.3);
  lo.path = deep ? root + "/sub" + std::to_string(k % 4) + "/o" + std::to_string(k)
                 : root + "/o" + std::to_string(k);
  switch (lo.op) {
    case McatOp::kRegister:
      lo.id = m.register_object(lo.path, "disk");
      lo.flag = lo.id.has_value();
      break;
    case McatOp::kResolve:
      lo.id = m.resolve(lo.path);
      lo.flag = lo.id.has_value();
      break;
    case McatOp::kUnregister:
      lo.id = m.unregister_object(lo.path);
      lo.flag = lo.id.has_value();
      break;
    case McatOp::kSetAttr:
      lo.key = "k" + std::to_string(rng.below(4));
      lo.value = "v" + std::to_string(rng.below(8));
      lo.flag = m.set_attr(lo.path, lo.key, lo.value);
      break;
    case McatOp::kGetAttr:
      lo.key = "k" + std::to_string(rng.below(4));
      lo.attr = m.get_attr(lo.path, lo.key);
      lo.flag = lo.attr.has_value();
      break;
    case McatOp::kMakeColl:
      lo.path = root + "/sub" + std::to_string(k % 4);
      lo.flag = m.make_collection(lo.path);
      break;
    case McatOp::kCollExists:
      lo.path = root + "/sub" + std::to_string(k % 4);
      lo.flag = m.collection_exists(lo.path);
      break;
    case McatOp::kList:
      lo.path = rng.chance(0.5) ? root : root + "/sub" + std::to_string(k % 4);
      lo.listing = m.list(lo.path);
      std::sort(lo.listing.begin(), lo.listing.end());
      break;
    case McatOp::kMeta: {
      const auto meta = m.meta(lo.path);
      lo.flag = meta.has_value();
      if (meta) lo.id = meta->id;
      break;
    }
    case McatOp::kCount:
      break;
  }
  return lo;
}

/// Replays a logged op against the model and asserts the same signature.
void replay_and_compare(FlatMcat& model, const LoggedOp& lo, IdBijection& ids) {
  switch (lo.op) {
    case McatOp::kRegister: {
      const auto id = model.register_object(lo.path, "disk");
      ASSERT_EQ(lo.flag, id.has_value()) << lo.path;
      ids.check(lo.id, id);
      break;
    }
    case McatOp::kResolve: {
      const auto id = model.resolve(lo.path);
      ASSERT_EQ(lo.flag, id.has_value()) << lo.path;
      ids.check(lo.id, id);
      break;
    }
    case McatOp::kUnregister: {
      const auto id = model.unregister_object(lo.path);
      ASSERT_EQ(lo.flag, id.has_value()) << lo.path;
      ids.check(lo.id, id);
      break;
    }
    case McatOp::kSetAttr:
      ASSERT_EQ(lo.flag, model.set_attr(lo.path, lo.key, lo.value)) << lo.path;
      break;
    case McatOp::kGetAttr: {
      const auto v = model.get_attr(lo.path, lo.key);
      ASSERT_EQ(lo.attr, v) << lo.path << " " << lo.key;
      break;
    }
    case McatOp::kMakeColl:
      ASSERT_EQ(lo.flag, model.make_collection(lo.path)) << lo.path;
      break;
    case McatOp::kCollExists:
      ASSERT_EQ(lo.flag, model.collection_exists(lo.path)) << lo.path;
      break;
    case McatOp::kList: {
      auto got = model.list(lo.path);
      std::sort(got.begin(), got.end());
      ASSERT_EQ(lo.listing, got) << lo.path;
      break;
    }
    case McatOp::kMeta: {
      const auto meta = model.meta(lo.path);
      ASSERT_EQ(lo.flag, meta.has_value()) << lo.path;
      ids.check(lo.id, meta ? std::optional<ObjectId>(meta->id) : std::nullopt);
      break;
    }
    case McatOp::kCount:
      break;
  }
}

// ---------------------------------------------------------------------------
// 1. Single-threaded equivalence fuzz: the catalog is drop-in equal to the
//    flat reference, op for op, id for id (both allocate ids only on a
//    successful register, starting at 1).
// ---------------------------------------------------------------------------
TEST(McatConcurrent, SingleThreadEquivalenceFuzz) {
  Mcat dut;
  FlatMcat model;
  IdBijection ids;
  Rng rng(0xfeedu);
  ASSERT_TRUE(dut.make_collection("/t"));
  ASSERT_TRUE(model.make_collection("/t"));
  for (int i = 0; i < 20000; ++i) {
    const LoggedOp lo = random_op(dut, rng, "/t", 32);
    replay_and_compare(model, lo, ids);
    ASSERT_EQ(dut.object_count(), model.object_count()) << "op " << i;
  }
}

// ---------------------------------------------------------------------------
// 2. N threads in disjoint namespaces: each thread's log replays exactly
//    against a private flat model. Any cross-thread corruption (a lock
//    striping bug bleeding writes across segments) shows up as a replay
//    mismatch or a TSan report.
// ---------------------------------------------------------------------------
TEST(McatConcurrent, DisjointNamespaceStormMatchesSequentialReplay) {
  constexpr int kThreads = 8;
  constexpr int kOps = 4000;
  Mcat dut;
  for (int t = 0; t < kThreads; ++t)
    ASSERT_TRUE(dut.make_collection("/t" + std::to_string(t)));

  std::vector<std::vector<LoggedOp>> logs(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dut, &logs, t] {
      Rng rng(0xabc0 + static_cast<std::uint64_t>(t));
      const std::string root = "/t" + std::to_string(t);
      logs[static_cast<std::size_t>(t)].reserve(kOps);
      for (int i = 0; i < kOps; ++i)
        logs[static_cast<std::size_t>(t)].push_back(
            random_op(dut, rng, root, 24));
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    FlatMcat model;
    ASSERT_TRUE(model.make_collection("/t" + std::to_string(t)));
    IdBijection ids;
    for (const LoggedOp& lo : logs[static_cast<std::size_t>(t)])
      replay_and_compare(model, lo, ids);
  }
}

// ---------------------------------------------------------------------------
// 3. Shared hot keys: every thread fights over the same 16 paths. No
//    sequential replay is possible; instead the final state must satisfy
//    the catalog's own invariants.
// ---------------------------------------------------------------------------
TEST(McatConcurrent, SharedHotKeyStormKeepsInvariants) {
  constexpr int kThreads = 8;
  constexpr int kOps = 3000;
  constexpr int kKeys = 16;
  Mcat dut;
  ASSERT_TRUE(dut.make_collection("/shared"));

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dut, t] {
      Rng rng(0x5eed0 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kOps; ++i) {
        const std::string p = "/shared/k" + std::to_string(rng.below(kKeys));
        switch (rng.below(5)) {
          case 0: (void)dut.register_object(p, "disk"); break;
          case 1: (void)dut.unregister_object(p); break;
          case 2: (void)dut.resolve(p); break;
          case 3: (void)dut.set_attr(p, "owner", std::to_string(t)); break;
          case 4: (void)dut.meta(p); break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Final state: object_count equals the number of resolvable keys, every
  // resolvable key has coherent meta, and listing matches resolve.
  std::size_t live = 0;
  for (int k = 0; k < kKeys; ++k) {
    const std::string p = "/shared/k" + std::to_string(k);
    const auto id = dut.resolve(p);
    if (!id) continue;
    ++live;
    const auto meta = dut.meta(p);
    ASSERT_TRUE(meta.has_value()) << p;
    EXPECT_EQ(meta->id, *id) << p;
    EXPECT_EQ(meta->resource, "disk") << p;
  }
  EXPECT_EQ(dut.object_count(), live);
  auto listed = dut.list("/shared");
  EXPECT_EQ(listed.size(), live);
}

// ---------------------------------------------------------------------------
// 4. Same-path register races: exactly one winner per round, and the
//    winner's id is the one that resolves until it is unregistered.
// ---------------------------------------------------------------------------
TEST(McatConcurrent, RegisterRaceHasExactlyOneWinnerPerRound) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 300;
  Mcat dut;
  ASSERT_TRUE(dut.make_collection("/race"));

  for (int round = 0; round < kRounds; ++round) {
    const std::string p = "/race/obj" + std::to_string(round);
    std::atomic<int> winners{0};
    std::atomic<ObjectId> winner_id{kInvalidObject};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&dut, &winners, &winner_id, &p] {
        const auto id = dut.register_object(p, "disk");
        if (id) {
          winners.fetch_add(1);
          winner_id.store(*id);
        }
      });
    }
    for (auto& th : threads) th.join();
    ASSERT_EQ(winners.load(), 1) << p;
    ASSERT_EQ(dut.resolve(p), winner_id.load()) << p;
  }
}

// ---------------------------------------------------------------------------
// 5. Overlapping deep collection trees: concurrent make_collection calls
//    sharing ancestors must leave every ancestor existing (the multi-key
//    op locks several stripes at once — this is the deadlock/atomicity
//    probe for that path).
// ---------------------------------------------------------------------------
TEST(McatConcurrent, OverlappingDeepCollectionTrees) {
  constexpr int kThreads = 8;
  constexpr int kOps = 500;
  Mcat dut;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dut, t] {
      Rng rng(0xdeef + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kOps; ++i) {
        const int a = static_cast<int>(rng.below(4));
        const int b = static_cast<int>(rng.below(4));
        const std::string deep = "/trees/a" + std::to_string(a) + "/b" +
                                 std::to_string(b) + "/leaf" +
                                 std::to_string(t);
        ASSERT_TRUE(dut.make_collection(deep));
        (void)dut.register_object(deep + "/obj" + std::to_string(i % 8),
                                  "disk");
      }
    });
  }
  for (auto& th : threads) th.join();

  ASSERT_TRUE(dut.collection_exists("/trees"));
  for (int a = 0; a < 4; ++a) {
    ASSERT_TRUE(dut.collection_exists("/trees/a" + std::to_string(a)));
    for (int b = 0; b < 4; ++b)
      ASSERT_TRUE(dut.collection_exists("/trees/a" + std::to_string(a) +
                                        "/b" + std::to_string(b)));
  }
}

// ---------------------------------------------------------------------------
// 6. list() under churn: concurrent readers must always see a well-formed
//    set of immediate children, never a torn path or a grandchild.
// ---------------------------------------------------------------------------
TEST(McatConcurrent, ListUnderChurnSeesOnlyWellFormedChildren) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 3;
  constexpr int kOps = 2500;
  Mcat dut;
  ASSERT_TRUE(dut.make_collection("/churn"));
  ASSERT_TRUE(dut.make_collection("/churn/stable"));

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&dut, t] {
      Rng rng(0xc0ffee + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kOps; ++i) {
        const std::string p = "/churn/o" + std::to_string(rng.below(32));
        if (rng.chance(0.5))
          (void)dut.register_object(p, "disk");
        else
          (void)dut.unregister_object(p);
      }
    });
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&dut, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto entries = dut.list("/churn");
        bool saw_stable = false;
        for (const auto& e : entries) {
          ASSERT_EQ(e.compare(0, 7, "/churn/"), 0) << e;
          ASSERT_EQ(e.find('/', 7), std::string::npos) << e;
          if (e == "/churn/stable") saw_stable = true;
        }
        ASSERT_TRUE(saw_stable);  // untouched entries are always visible
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true);
  for (auto& th : readers) th.join();
}

}  // namespace
}  // namespace remio::srb
