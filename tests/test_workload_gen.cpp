// The workload-generation subsystem (src/testbed/workload): determinism of
// generated op streams, zipfian skew, Daly closed-form accounting, lifecycle
// invariants for every registered generator, the replay round-trip property
// (trace of a run -> replay reproduces its op-kind/byte histogram), and the
// shared executor's integration with the testbed stack.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/trace_export.hpp"
#include "simnet/timescale.hpp"
#include "testbed/workload/daly.hpp"
#include "testbed/workload/executor.hpp"
#include "testbed/workload/registry.hpp"
#include "testbed/workload/replay.hpp"
#include "testbed/workload/ycsb.hpp"
#include "testbed/workload/zipfian.hpp"
#include "testbed/workloads.hpp"

namespace remio::testbed::workload {
namespace {

// Small-but-representative params per registered generator, so table-driven
// tests cover every name the registry knows.
WorkloadParams small_params(const std::string& name, int ranks,
                            std::uint64_t seed,
                            const std::string& trace_path = "") {
  WorkloadParams p;
  p.ranks = ranks;
  p.seed = seed;
  if (name == "ycsb") {
    p.kv = {{"records", "64"}, {"record-kb", "1"}, {"ops", "40"}};
  } else if (name == "daly") {
    p.kv = {{"chkpoint-mb", "1"},
            {"chkpoint-bw-mbs", "4"},
            {"runtime-s", "30"},
            {"mtti-s", "200"}};
  } else if (name == "extsort") {
    p.kv = {{"data-mb", "2"}, {"mem-mb", "1"}, {"block-kb", "256"},
            {"fanin", "2"}};
  } else if (name == "replay") {
    p.kv = {{"trace", trace_path}};
  }
  return p;
}

/// Drains rank `rank`'s stream up to (and excluding) kEnd. Fails the test if
/// the stream does not terminate within a generous cap.
std::vector<Op> drain_stream(WorkloadGenerator& gen, int rank) {
  std::vector<Op> ops;
  for (int i = 0; i < 200000; ++i) {
    Op op = gen.get_next(rank);
    if (op.kind == OpKind::kEnd) return ops;
    ops.push_back(std::move(op));
  }
  ADD_FAILURE() << "stream for rank " << rank << " did not reach kEnd";
  return ops;
}

/// A synthetic 2-rank trace with the four replayable span kinds, written as
/// Chrome trace JSON. Returns the path.
std::string write_synthetic_trace() {
  std::vector<obs::Span> spans;
  auto add = [&](std::uint16_t rank, obs::SpanKind kind, std::uint64_t bytes,
                 double t0, double t1) {
    obs::Span s;
    s.op_id = spans.size() + 1;
    s.kind = kind;
    s.rank = rank;
    s.bytes = bytes;
    s.enqueue = s.dequeue = s.wire_start = t0;
    s.wire_end = t1;
    spans.push_back(s);
  };
  add(0, obs::SpanKind::kCompute, 0, 0.0, 0.5);
  add(0, obs::SpanKind::kIwrite, 4096, 0.5, 0.9);
  add(0, obs::SpanKind::kSyncRead, 2048, 1.0, 1.2);
  add(1, obs::SpanKind::kSyncWrite, 1024, 0.1, 0.3);
  add(1, obs::SpanKind::kIread, 512, 0.4, 0.6);
  add(1, obs::SpanKind::kWire, 9999, 0.0, 1.0);  // transport span: skipped
  const std::string path =
      testing::TempDir() + "/workload_gen_synthetic_trace.json";
  obs::dump_chrome_trace(path, spans);
  return path;
}

// --- determinism ------------------------------------------------------------

TEST(WorkloadGenDeterminism, SameSeedBitIdenticalStreams) {
  const std::string trace = write_synthetic_trace();
  for (const auto& name : registered_generators()) {
    auto a = make_generator(name);
    auto b = make_generator(name);
    const WorkloadParams p = small_params(name, 2, 1234, trace);
    a->load(p);
    b->load(p);
    for (int r = 0; r < p.ranks; ++r) {
      const std::vector<Op> sa = drain_stream(*a, r);
      const std::vector<Op> sb = drain_stream(*b, r);
      ASSERT_EQ(sa.size(), sb.size()) << name << " rank " << r;
      for (std::size_t i = 0; i < sa.size(); ++i)
        ASSERT_TRUE(sa[i] == sb[i])
            << name << " rank " << r << " op " << i << " ("
            << op_kind_name(sa[i].kind) << " vs " << op_kind_name(sb[i].kind)
            << ")";
    }
    // Stream stays ended.
    EXPECT_EQ(a->get_next(0).kind, OpKind::kEnd);
    EXPECT_EQ(a->get_next(0).kind, OpKind::kEnd);
  }
}

TEST(WorkloadGenDeterminism, DifferentSeedChangesYcsbStream) {
  auto a = make_generator("ycsb");
  auto b = make_generator("ycsb");
  a->load(small_params("ycsb", 1, 1));
  b->load(small_params("ycsb", 1, 2));
  const std::vector<Op> sa = drain_stream(*a, 0);
  const std::vector<Op> sb = drain_stream(*b, 0);
  bool differs = sa.size() != sb.size();
  for (std::size_t i = 0; !differs && i < sa.size(); ++i)
    differs = !(sa[i] == sb[i]);
  EXPECT_TRUE(differs) << "seed change did not alter the ycsb op stream";
}

TEST(WorkloadGenDeterminism, RankSeedDecorrelates) {
  EXPECT_NE(rank_seed(42, 0), rank_seed(42, 1));
  EXPECT_NE(rank_seed(42, 0), rank_seed(43, 0));
  EXPECT_EQ(rank_seed(42, 3), rank_seed(42, 3));
  EXPECT_NE(rank_seed(42, 0, 0), rank_seed(42, 0, 1));
}

// --- zipfian ----------------------------------------------------------------

TEST(ZipfianTest, SkewConcentratesOnHotKeys) {
  const std::uint64_t n = 1000;
  Zipfian z(n, 0.99);
  Rng rng(7);
  std::vector<std::uint64_t> counts(n, 0);
  const int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) counts[z.sample(rng)]++;

  // Key 0 is the hottest by a wide margin.
  const std::uint64_t top = *std::max_element(counts.begin(), counts.end());
  EXPECT_EQ(top, counts[0]);
  EXPECT_GT(counts[0], counts[n / 2] * 10);

  // The hottest 10% of keys draw well over half the samples (for theta=0.99
  // and n=1000 the true mass is ~80%; assert a loose lower bound).
  std::uint64_t head = 0;
  for (std::uint64_t k = 0; k < n / 10; ++k) head += counts[k];
  EXPECT_GT(static_cast<double>(head), 0.5 * kSamples);

  // Every key is reachable in principle; the tail is rare but present.
  std::uint64_t tail = 0;
  for (std::uint64_t k = n / 2; k < n; ++k) tail += counts[k];
  EXPECT_GT(tail, 0u);
}

TEST(ZipfianTest, ValidatesArguments) {
  EXPECT_THROW(Zipfian(0, 0.5), std::invalid_argument);
  EXPECT_THROW(Zipfian(10, 1.0), std::invalid_argument);
  EXPECT_THROW(Zipfian(10, -0.1), std::invalid_argument);
  EXPECT_NO_THROW(Zipfian(10, 0.0));
}

TEST(ZipfianTest, ScrambleScattersDistinctKeys) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t k = 0; k < 1000; ++k) seen.insert(Zipfian::scramble(k));
  EXPECT_EQ(seen.size(), 1000u);  // FNV-1a collisions over 1000 keys: none
}

// --- daly closed form -------------------------------------------------------

TEST(DalyTest, ClosedFormMatchesGeneratedOps) {
  const double chkpoint_mb = 1.0, bw = 4.0, runtime = 30.0, mtti = 200.0;
  const double delta = chkpoint_mb / bw;
  const double tau = std::sqrt(2.0 * delta * mtti) - delta;
  EXPECT_NEAR(daly_optimum_interval(delta, mtti), tau, 1e-12);
  const auto n = static_cast<std::uint64_t>(std::floor(runtime / (tau + delta)));
  ASSERT_GE(n, 1u);
  EXPECT_EQ(daly_checkpoint_count(runtime, tau, delta), n);

  const int ranks = 3;
  auto gen = make_generator("daly");
  gen->load(small_params("daly", ranks, 9));
  const auto total = static_cast<std::uint64_t>(chkpoint_mb * 1024 * 1024);
  std::uint64_t written = 0;
  for (int r = 0; r < ranks; ++r) {
    const std::vector<Op> s = drain_stream(*gen, r);
    std::uint64_t writes = 0;
    double computed = 0.0;
    for (const Op& op : s) {
      if (op.kind == OpKind::kWriteAt) {
        ++writes;
        written += op.bytes;
      }
      if (op.kind == OpKind::kCompute) computed += op.seconds;
    }
    // One striped write and one tau-long compute per cycle, per rank.
    EXPECT_EQ(writes, n) << "rank " << r;
    EXPECT_NEAR(computed, static_cast<double>(n) * tau, 1e-9) << "rank " << r;
  }
  // The stripes tile the checkpoint exactly, every cycle.
  EXPECT_EQ(written, n * total);
}

TEST(DalyTest, ClosedFormValidatesInputs) {
  EXPECT_THROW(daly_optimum_interval(0.0, 100.0), std::invalid_argument);
  EXPECT_THROW(daly_optimum_interval(10.0, -1.0), std::invalid_argument);
  // MTTI so small the interval goes non-positive.
  EXPECT_THROW(daly_optimum_interval(10.0, 1.0), std::invalid_argument);
  EXPECT_EQ(daly_checkpoint_count(1.0, 10.0, 1.0), 1u);  // at least one
}

// --- registry ---------------------------------------------------------------

TEST(WorkloadRegistry, BuiltinsPresentAndSorted) {
  const auto names = registered_generators();
  for (const char* want : {"ycsb", "daly", "extsort", "replay"})
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << want;
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(WorkloadRegistry, UnknownNameThrowsListingKnown) {
  try {
    make_generator("no-such-generator");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ycsb"), std::string::npos);
  }
}

TEST(WorkloadRegistry, DuplicateRegistrationThrows) {
  EXPECT_THROW(register_generator("ycsb", &make_ycsb), std::invalid_argument);
}

// --- params -----------------------------------------------------------------

TEST(WorkloadParamsTest, TypedGettersValidate) {
  WorkloadParams p;
  p.kv = {{"n", "12"}, {"x", "2.5"}, {"flag", "0"}, {"junk", "abc"}};
  EXPECT_EQ(p.get_int("n", 0), 12);
  EXPECT_EQ(p.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(p.get_double("x", 0.0), 2.5);
  EXPECT_FALSE(p.get_bool("flag", true));
  EXPECT_THROW(p.get_int("junk", 0), std::invalid_argument);
  EXPECT_THROW(WorkloadParams::require(false, "t", "boom"),
               std::invalid_argument);
  EXPECT_NO_THROW(WorkloadParams::require(true, "t", "fine"));
}

TEST(WorkloadParamsTest, GeneratorsRejectBadParams) {
  auto ycsb = make_generator("ycsb");
  WorkloadParams p = small_params("ycsb", 2, 1);
  p.kv["read-pct"] = "90";
  p.kv["update-pct"] = "90";  // sums over 100
  EXPECT_THROW(ycsb->load(p), std::invalid_argument);

  auto replay = make_generator("replay");
  EXPECT_THROW(replay->load(small_params("replay", 1, 1, "")),
               std::invalid_argument);
  EXPECT_THROW(replay->load(small_params("replay", 1, 1, "/no/such/file")),
               std::invalid_argument);

  auto extsort = make_generator("extsort");
  WorkloadParams e = small_params("extsort", 1, 1);
  e.kv["mem-mb"] = "99";  // larger than data-mb
  EXPECT_THROW(extsort->load(e), std::invalid_argument);
}

// --- lifecycle invariants for every registered generator --------------------

TEST(WorkloadLifecycle, EveryGeneratorSatisfiesStreamInvariants) {
  const std::string trace = write_synthetic_trace();
  const int ranks = 2;
  for (const auto& name : registered_generators()) {
    auto gen = make_generator(name);
    gen->load(small_params(name, ranks, 77, trace));

    std::vector<std::vector<Op>> streams;
    for (int r = 0; r < ranks; ++r) streams.push_back(drain_stream(*gen, r));

    std::vector<std::vector<std::pair<OpKind, std::int32_t>>> collectives(
        static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      std::set<std::int32_t> open;
      for (const Op& op : streams[static_cast<std::size_t>(r)]) {
        switch (op.kind) {
          case OpKind::kOpen:
            EXPECT_EQ(open.count(op.file), 0u)
                << name << ": double open of slot " << op.file;
            EXPECT_FALSE(op.path.empty()) << name << ": open without a path";
            open.insert(op.file);
            break;
          case OpKind::kClose:
            EXPECT_EQ(open.count(op.file), 1u)
                << name << ": close of unopened slot " << op.file;
            open.erase(op.file);
            break;
          case OpKind::kRead:
          case OpKind::kWrite:
          case OpKind::kReadAt:
          case OpKind::kWriteAt:
          case OpKind::kFlush:
            EXPECT_EQ(open.count(op.file), 1u)
                << name << ": " << op_kind_name(op.kind)
                << " on closed slot " << op.file;
            break;
          case OpKind::kCompute:
            EXPECT_GE(op.seconds, 0.0);
            break;
          case OpKind::kBarrier:
          case OpKind::kPhaseMark:
            collectives[static_cast<std::size_t>(r)].emplace_back(op.kind,
                                                                  op.user);
            break;
          default:
            break;
        }
      }
      EXPECT_TRUE(open.empty())
          << name << ": rank " << r << " ended with open files";
      EXPECT_EQ(gen->get_next(r).kind, OpKind::kEnd)
          << name << ": kEnd does not repeat";
    }
    // Collective ops (barriers / phase marks) must line up across ranks.
    for (int r = 1; r < ranks; ++r)
      EXPECT_EQ(collectives[0], collectives[static_cast<std::size_t>(r)])
          << name << ": rank " << r << " collective sequence diverges";
  }
}

// --- replay histogram helpers -----------------------------------------------

TEST(ReplayTest, HistogramAndRankCountFromTrace) {
  const std::string path = write_synthetic_trace();
  EXPECT_EQ(trace_rank_count(path), 2);

  std::ifstream f(path);
  const auto spans = obs::read_chrome_trace(f);
  const auto hist = replay_histogram_from_trace(spans);
  EXPECT_EQ(hist.at(OpKind::kReadAt).count, 2u);
  EXPECT_EQ(hist.at(OpKind::kReadAt).bytes, 2048u + 512u);
  EXPECT_EQ(hist.at(OpKind::kWriteAt).count, 2u);
  EXPECT_EQ(hist.at(OpKind::kWriteAt).bytes, 4096u + 1024u);
  EXPECT_EQ(hist.at(OpKind::kCompute).count, 1u);

  EXPECT_THROW(trace_rank_count("/no/such/trace.json"),
               std::invalid_argument);
}

/// Histogram of the *replayed* portion of a generator's streams: ops after
/// each rank's first kPhaseMark (everything before it is preload).
std::map<OpKind, OpTally> generated_histogram(WorkloadGenerator& gen,
                                              int ranks) {
  std::map<OpKind, OpTally> hist;
  for (int r = 0; r < ranks; ++r) {
    bool past_mark = false;
    for (const Op& op : drain_stream(gen, r)) {
      if (op.kind == OpKind::kPhaseMark) {
        past_mark = true;
        continue;
      }
      if (!past_mark) continue;
      if (op.kind == OpKind::kReadAt || op.kind == OpKind::kWriteAt ||
          op.kind == OpKind::kCompute) {
        hist[op.kind].count += 1;
        hist[op.kind].bytes += op.bytes;
      }
    }
  }
  return hist;
}

// The round-trip property at the heart of the replay generator: trace a real
// run of the paper's Fig. 7 workload, replay the trace, and the replayed op
// stream reproduces the trace's op-kind/byte histogram exactly.
TEST(ReplayTest, RoundTripReproducesLaplaceHistogram) {
  simnet::ScopedTimeScale scale(300.0);
  LaplaceParams p;
  p.checkpoint_bytes = 1u << 20;
  p.checkpoints = 2;
  p.iters_per_checkpoint = 2;
  p.compute_total = 0.8;
  p.halo_bytes = 4 * 1024;
  p.async = true;
  RunResult run;
  {
    Testbed tb(das2(), 2);
    run = run_laplace(tb, 2, p);
  }
  ASSERT_FALSE(run.spans.empty()) << "laplace run produced no spans";

  const std::string path = testing::TempDir() + "/laplace_roundtrip.json";
  obs::dump_chrome_trace(path, run.spans);

  ASSERT_EQ(trace_rank_count(path), 2);
  auto gen = make_generator("replay");
  gen->load(small_params("replay", 2, 1, path));
  const auto replayed = generated_histogram(*gen, 2);

  std::ifstream f(path);
  const auto expected = replay_histogram_from_trace(obs::read_chrome_trace(f));
  EXPECT_FALSE(expected.empty());
  EXPECT_GT(expected.at(OpKind::kWriteAt).count, 0u);
  ASSERT_EQ(replayed.size(), expected.size());
  for (const auto& [kind, tally] : expected) {
    ASSERT_TRUE(replayed.count(kind)) << op_kind_name(kind);
    EXPECT_EQ(replayed.at(kind).count, tally.count) << op_kind_name(kind);
    if (kind != OpKind::kCompute) {
      EXPECT_EQ(replayed.at(kind).bytes, tally.bytes) << op_kind_name(kind);
    }
  }
}

// --- executor integration ---------------------------------------------------

TEST(WorkloadExecutorTest, YcsbRunsThroughFullStack) {
  simnet::ScopedTimeScale scale(300.0);
  auto gen = make_generator("ycsb");
  WorkloadParams p = small_params("ycsb", 2, 5);
  gen->load(p);

  Testbed tb(das2(), 2);
  ExecOptions eo;
  eo.procs = 2;
  const ExecResult r = execute(tb, *gen, eo);

  EXPECT_GT(r.exec, 0.0);
  EXPECT_EQ(r.marks.size(), 2u);  // load-phase mark + operate-phase mark
  // 64 records x 1 KiB load phase lands in the store.
  EXPECT_EQ(tb.server().store().total_bytes(), 64u * 1024u);
  EXPECT_GE(r.bytes_written, 64u * 1024u);
  // Tallies come from actual completions: bytes accounted per kind add up.
  EXPECT_EQ(r.bytes(OpKind::kReadAt) + r.bytes(OpKind::kRead), r.bytes_read);
  EXPECT_EQ(r.bytes(OpKind::kWriteAt) + r.bytes(OpKind::kWrite),
            r.bytes_written);
  // Both ranks opened, wrote, read, closed.
  EXPECT_GE(r.ops(OpKind::kOpen), 2u);
  EXPECT_EQ(r.ops(OpKind::kOpen), r.ops(OpKind::kClose));
  EXPECT_GT(r.ops(OpKind::kReadAt), 0u);
  EXPECT_GT(r.ops(OpKind::kWriteAt), 0u);
  EXPECT_FALSE(r.spans.empty());
}

TEST(WorkloadExecutorTest, DalyAccountsBytesAndMarks) {
  simnet::ScopedTimeScale scale(300.0);
  auto gen = make_generator("daly");
  WorkloadParams p = small_params("daly", 2, 5);
  gen->load(p);

  Testbed tb(das2(), 2);
  ExecOptions eo;
  eo.procs = 2;
  const ExecResult r = execute(tb, *gen, eo);

  EXPECT_GT(r.exec, 0.0);
  EXPECT_GT(r.compute_phase, 0.0);
  EXPECT_GT(r.io_phase, 0.0);
  // Every checkpoint cycle writes the full stripe set.
  EXPECT_EQ(r.bytes_written % (1u << 20), 0u);
  EXPECT_GE(r.bytes_written, 1u << 20);
  EXPECT_EQ(tb.server().store().total_bytes(), 1u << 20);
}

TEST(WorkloadExecutorTest, RejectsBadProcCountAndUnknownRank) {
  simnet::ScopedTimeScale scale(300.0);
  auto gen = make_generator("ycsb");
  gen->load(small_params("ycsb", 2, 5));
  EXPECT_THROW(gen->get_next(5), std::out_of_range);

  Testbed tb(das2(), 2);
  ExecOptions eo;
  eo.procs = 99;  // more ranks than testbed nodes
  EXPECT_THROW(execute(tb, *gen, eo), std::invalid_argument);
}

}  // namespace
}  // namespace remio::testbed::workload
