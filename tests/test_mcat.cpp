// Metadata catalog (MCAT) unit tests: namespace, attributes, listing.
#include <gtest/gtest.h>

#include "srb/mcat.hpp"

namespace remio::srb {
namespace {

TEST(Mcat, NormalizePaths) {
  EXPECT_EQ(Mcat::normalize("/a//b/c/"), "/a/b/c");
  EXPECT_EQ(Mcat::normalize("a/b"), "/a/b");
  EXPECT_EQ(Mcat::normalize("/"), "/");
  EXPECT_EQ(Mcat::normalize(""), "/");
  EXPECT_EQ(Mcat::normalize("///"), "/");
}

TEST(Mcat, ParentOf) {
  EXPECT_EQ(Mcat::parent_of("/a/b/c"), "/a/b");
  EXPECT_EQ(Mcat::parent_of("/a"), "/");
  EXPECT_EQ(Mcat::parent_of("/"), "/");
}

TEST(Mcat, RootExists) {
  Mcat m;
  EXPECT_TRUE(m.collection_exists("/"));
  EXPECT_FALSE(m.collection_exists("/nope"));
}

TEST(Mcat, MakeCollectionCreatesParents) {
  Mcat m;
  EXPECT_TRUE(m.make_collection("/home/demo/data"));
  EXPECT_TRUE(m.collection_exists("/home"));
  EXPECT_TRUE(m.collection_exists("/home/demo"));
  EXPECT_TRUE(m.collection_exists("/home/demo/data"));
}

TEST(Mcat, RegisterRequiresParent) {
  Mcat m;
  EXPECT_FALSE(m.register_object("/no/such/obj", "disk").has_value());
  m.make_collection("/no/such");
  EXPECT_TRUE(m.register_object("/no/such/obj", "disk").has_value());
}

TEST(Mcat, RegisterRejectsDuplicates) {
  Mcat m;
  m.make_collection("/c");
  const auto id1 = m.register_object("/c/x", "disk");
  ASSERT_TRUE(id1.has_value());
  EXPECT_FALSE(m.register_object("/c/x", "disk").has_value());
  EXPECT_EQ(m.resolve("/c/x"), id1);
  EXPECT_EQ(m.object_count(), 1u);
}

TEST(Mcat, ObjectShadowsCollectionName) {
  Mcat m;
  m.make_collection("/c");
  ASSERT_TRUE(m.register_object("/c/x", "disk").has_value());
  EXPECT_FALSE(m.make_collection("/c/x"));
  EXPECT_FALSE(m.register_object("/c", "disk").has_value());  // collection taken
}

TEST(Mcat, UnregisterFreesName) {
  Mcat m;
  m.make_collection("/c");
  const auto id = m.register_object("/c/x", "disk");
  EXPECT_EQ(m.unregister_object("/c/x"), id);
  EXPECT_FALSE(m.resolve("/c/x").has_value());
  EXPECT_FALSE(m.unregister_object("/c/x").has_value());
  EXPECT_TRUE(m.register_object("/c/x", "disk").has_value());
}

TEST(Mcat, Attributes) {
  Mcat m;
  m.make_collection("/c");
  m.register_object("/c/x", "disk");
  EXPECT_TRUE(m.set_attr("/c/x", "codec", "lzmini"));
  EXPECT_EQ(m.get_attr("/c/x", "codec").value(), "lzmini");
  EXPECT_FALSE(m.get_attr("/c/x", "missing").has_value());
  EXPECT_FALSE(m.set_attr("/c/none", "k", "v"));
  m.set_attr("/c/x", "codec", "rle");  // overwrite
  EXPECT_EQ(m.get_attr("/c/x", "codec").value(), "rle");
}

TEST(Mcat, ListImmediateChildrenOnly) {
  Mcat m;
  m.make_collection("/c/deep");
  m.register_object("/c/x", "disk");
  m.register_object("/c/deep/y", "disk");
  const auto kids = m.list("/c");
  ASSERT_EQ(kids.size(), 2u);  // "/c/x" object + "/c/deep" collection
  EXPECT_NE(std::find(kids.begin(), kids.end(), "/c/x"), kids.end());
  EXPECT_NE(std::find(kids.begin(), kids.end(), "/c/deep"), kids.end());
  const auto root = m.list("/");
  EXPECT_EQ(root.size(), 1u);  // just "/c"
}

TEST(Mcat, MetaCarriesResource) {
  Mcat m;
  m.make_collection("/c");
  m.register_object("/c/x", "orion-disk");
  const auto meta = m.meta("/c/x");
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->resource, "orion-disk");
  EXPECT_NE(meta->id, kInvalidObject);
}

}  // namespace
}  // namespace remio::srb
