// MPI-IO front-end tests over the ufs driver: explicit-offset and
// file-pointer I/O, seek semantics, the generic async fallback (Fig. 2
// architecture), request semantics, and error paths.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.hpp"
#include "mpiio/file.hpp"
#include "mpiio/ufs.hpp"

namespace remio::mpiio {
namespace {

class MpiioTest : public ::testing::Test {
 protected:
  MpiioTest() {
    root_ = std::filesystem::temp_directory_path() /
            ("remio_mpiio_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    driver_ = std::make_unique<UfsDriver>(root_.string());
  }
  ~MpiioTest() override {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  static int counter_;
  std::filesystem::path root_;
  std::unique_ptr<UfsDriver> driver_;
};

int MpiioTest::counter_ = 0;

TEST_F(MpiioTest, OpenMissingWithoutCreateFails) {
  EXPECT_THROW(File(*driver_, "/nope", kModeRead), IoError);
}

TEST_F(MpiioTest, WriteAtReadAt) {
  File f(*driver_, "/a", kModeRead | kModeWrite | kModeCreate);
  const Bytes data = to_bytes("0123456789");
  EXPECT_EQ(f.write_at(0, ByteSpan(data.data(), data.size())), 10u);
  Bytes mid(4);
  EXPECT_EQ(f.read_at(3, MutByteSpan(mid.data(), mid.size())), 4u);
  EXPECT_EQ(to_string(ByteSpan(mid.data(), mid.size())), "3456");
  EXPECT_EQ(f.size(), 10u);
  f.close();
}

TEST_F(MpiioTest, FilePointerAdvances) {
  File f(*driver_, "/fp", kModeRead | kModeWrite | kModeCreate);
  const Bytes a = to_bytes("aaa");
  const Bytes b = to_bytes("bbb");
  f.write(ByteSpan(a.data(), a.size()));
  f.write(ByteSpan(b.data(), b.size()));
  f.seek(0, SEEK_SET);
  Bytes all(6);
  EXPECT_EQ(f.read(MutByteSpan(all.data(), all.size())), 6u);
  EXPECT_EQ(to_string(ByteSpan(all.data(), all.size())), "aaabbb");
  f.close();
}

TEST_F(MpiioTest, SeekWhenceForms) {
  File f(*driver_, "/seek", kModeRead | kModeWrite | kModeCreate);
  const Bytes data = to_bytes("0123456789");
  f.write_at(0, ByteSpan(data.data(), data.size()));
  EXPECT_EQ(f.seek(4, SEEK_SET), 4u);
  EXPECT_EQ(f.seek(3, SEEK_CUR), 7u);
  EXPECT_EQ(f.seek(-2, SEEK_END), 8u);
  EXPECT_THROW(f.seek(-100, SEEK_SET), IoError);
  EXPECT_THROW(f.seek(0, 99), IoError);
  f.close();
}

TEST_F(MpiioTest, ShortReadAtEof) {
  File f(*driver_, "/short", kModeRead | kModeWrite | kModeCreate);
  const Bytes data = to_bytes("xy");
  f.write_at(0, ByteSpan(data.data(), data.size()));
  Bytes buf(10);
  EXPECT_EQ(f.read_at(0, MutByteSpan(buf.data(), buf.size())), 2u);
  EXPECT_EQ(f.read_at(5, MutByteSpan(buf.data(), buf.size())), 0u);
  f.close();
}

TEST_F(MpiioTest, TruncMode) {
  {
    File f(*driver_, "/t", kModeWrite | kModeCreate);
    const Bytes data = to_bytes("longcontent");
    f.write_at(0, ByteSpan(data.data(), data.size()));
    f.close();
  }
  File f(*driver_, "/t", kModeRead | kModeWrite | kModeTrunc);
  EXPECT_EQ(f.size(), 0u);
  f.close();
}

TEST_F(MpiioTest, AsyncFallbackWriteRead) {
  File f(*driver_, "/async", kModeRead | kModeWrite | kModeCreate);
  Rng rng(1);
  const Bytes data = rng.bytes(128 * 1024);
  IoRequest w = f.iwrite_at(0, ByteSpan(data.data(), data.size()));
  EXPECT_EQ(w.wait(), data.size());
  EXPECT_TRUE(w.test());

  Bytes back(data.size());
  IoRequest r = f.iread_at(0, MutByteSpan(back.data(), back.size()));
  EXPECT_EQ(r.wait(), data.size());
  EXPECT_EQ(back, data);
  f.close();
}

TEST_F(MpiioTest, AsyncFifoOrderOnOverlappingWrites) {
  // FIFO execution means the later write wins on overlapping ranges.
  File f(*driver_, "/fifo", kModeRead | kModeWrite | kModeCreate);
  const Bytes first(1024, 'a');
  const Bytes second(1024, 'b');
  IoRequest w1 = f.iwrite_at(0, ByteSpan(first.data(), first.size()));
  IoRequest w2 = f.iwrite_at(0, ByteSpan(second.data(), second.size()));
  w1.wait();
  w2.wait();
  Bytes back(1024);
  f.read_at(0, MutByteSpan(back.data(), back.size()));
  EXPECT_EQ(back, second);
  f.close();
}

TEST_F(MpiioTest, IwriteAdvancesSharedFilePointer) {
  File f(*driver_, "/ifp", kModeRead | kModeWrite | kModeCreate);
  const Bytes a = to_bytes("AAAA");
  const Bytes b = to_bytes("BBBB");
  IoRequest r1 = f.iwrite(ByteSpan(a.data(), a.size()));
  IoRequest r2 = f.iwrite(ByteSpan(b.data(), b.size()));
  wait_all(&r1, &r1 + 1);
  r2.wait();
  Bytes back(8);
  f.read_at(0, MutByteSpan(back.data(), back.size()));
  EXPECT_EQ(to_string(ByteSpan(back.data(), back.size())), "AAAABBBB");
  f.close();
}

TEST_F(MpiioTest, FlushDrainsQueuedWrites) {
  File f(*driver_, "/drain", kModeRead | kModeWrite | kModeCreate);
  const Bytes data(64 * 1024, 'z');
  std::vector<IoRequest> reqs;
  for (int i = 0; i < 8; ++i)
    reqs.push_back(f.iwrite_at(static_cast<std::uint64_t>(i) * data.size(),
                               ByteSpan(data.data(), data.size())));
  f.flush();
  for (auto& r : reqs) EXPECT_TRUE(r.test());
  EXPECT_EQ(f.size(), 8u * data.size());
  f.close();
}

TEST_F(MpiioTest, CloseWaitsForOutstandingIo) {
  Bytes data(256 * 1024, 'q');
  {
    File f(*driver_, "/closewait", kModeWrite | kModeCreate);
    f.iwrite_at(0, ByteSpan(data.data(), data.size()));
    f.close();  // must complete the queued write
  }
  File f(*driver_, "/closewait", kModeRead);
  EXPECT_EQ(f.size(), data.size());
  f.close();
}

TEST(IoRequest, EmptyRequestBehaviour) {
  IoRequest r;
  EXPECT_FALSE(r.valid());
  EXPECT_TRUE(r.test());  // vacuously complete
  EXPECT_THROW(r.wait(), IoError);
}

TEST(IoRequest, WaitAllSums) {
  IoRequest a = IoRequest::make();
  IoRequest b = IoRequest::make();
  IoRequest::complete(a.state(), 10);
  IoRequest::complete(b.state(), 32);
  std::vector<IoRequest> reqs = {a, b};
  EXPECT_EQ(wait_all(reqs.begin(), reqs.end()), 42u);
}

TEST(IoRequest, ErrorRethrownOnWait) {
  IoRequest r = IoRequest::make();
  IoRequest::fail(r.state(), std::make_exception_ptr(IoError("boom")));
  EXPECT_TRUE(r.test());
  EXPECT_THROW(r.wait(), IoError);
}

TEST_F(MpiioTest, DriverRemoveAndExists) {
  {
    File f(*driver_, "/victim", kModeWrite | kModeCreate);
    f.close();
  }
  EXPECT_TRUE(driver_->exists("/victim"));
  driver_->remove("/victim");
  EXPECT_FALSE(driver_->exists("/victim"));
}

}  // namespace
}  // namespace remio::mpiio
