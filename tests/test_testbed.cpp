// Testbed tests: cluster presets encode §5, the world wires resources the
// results depend on (per-stream window cap, NAT bottleneck, node bus shared
// between MPI and WAN), and PhaseTimer reproduces the paper's max-speedup
// bookkeeping.
#include <gtest/gtest.h>

#include "core/semplar.hpp"
#include "simnet/timescale.hpp"
#include "testbed/phase.hpp"
#include "testbed/world.hpp"

namespace remio::testbed {
namespace {

TEST(ClusterPresets, EncodePaperSection5) {
  const ClusterSpec d = das2();
  EXPECT_NEAR(2 * d.one_way_to_core, 0.182, 0.01);  // ~182 ms RTT
  EXPECT_FALSE(d.nat);
  EXPECT_GT(d.uplink_out_rate, 0.0);

  const ClusterSpec o = osc_p4();
  EXPECT_NEAR(2 * o.one_way_to_core, 0.030, 0.005);  // ~30 ms RTT
  EXPECT_TRUE(o.nat);  // private addresses behind a NAT host (§7.1)
  EXPECT_GT(o.cpu_speed, d.cpu_speed);

  const ClusterSpec t = tg_ncsa();
  EXPECT_NEAR(2 * t.one_way_to_core, 0.030, 0.005);
  EXPECT_FALSE(t.nat);
  // The TG path share is calibrated from Fig. 8b (writes saturate first).
  EXPECT_GT(t.uplink_in_rate, t.uplink_out_rate);

  EXPECT_EQ(cluster_by_name("das2").name, "das2");
  EXPECT_EQ(cluster_by_name("osc").name, "osc");
  EXPECT_EQ(cluster_by_name("tg").name, "tg");
  EXPECT_THROW(cluster_by_name("bluegene"), std::out_of_range);
}

TEST(PhaseTimer, SplitsPhases) {
  simnet::ScopedTimeScale scale(300.0);  // phases last 7-20 ms of wall time
  PhaseTimer t;
  t.enter(Phase::kCompute);
  simnet::sleep_sim(2.0);
  t.enter(Phase::kIo);
  simnet::sleep_sim(6.0);
  t.enter(Phase::kCompute);
  simnet::sleep_sim(2.0);
  t.stop();

  EXPECT_NEAR(t.compute_seconds(), 4.0, 2.5);
  EXPECT_NEAR(t.io_seconds(), 6.0, 3.0);
  EXPECT_GT(t.io_seconds(), t.compute_seconds());
  // Paper §7.1: expected fully-overlapped time = max(compute, io).
  EXPECT_DOUBLE_EQ(t.max_overlap_expected(),
                   std::max(t.compute_seconds(), t.io_seconds()));
  EXPECT_DOUBLE_EQ(t.total_seconds(), t.compute_seconds() + t.io_seconds());
}

TEST(PhaseTimer, MergeAccumulates) {
  PhaseTimer a;
  PhaseTimer b;
  a.merge(b);  // zero-merge stays zero
  EXPECT_EQ(a.total_seconds(), 0.0);
}

class TestbedTest : public ::testing::Test {
 protected:
  // Moderate scale: timing comparisons stay above sleep-granularity noise.
  TestbedTest() : scale_(500.0) {}
  simnet::ScopedTimeScale scale_;
};

TEST_F(TestbedTest, BuildsHostsAndServer) {
  Testbed tb(tg_ncsa(), 4);
  EXPECT_EQ(tb.node_count(), 4);
  EXPECT_TRUE(tb.fabric().has_host("orion"));
  EXPECT_TRUE(tb.fabric().has_host("tg-node0"));
  EXPECT_TRUE(tb.fabric().has_host("tg-node3"));
  EXPECT_FALSE(tb.fabric().has_host("tg-node4"));
  EXPECT_THROW(Testbed(tg_ncsa(), 0), std::invalid_argument);
  EXPECT_THROW(Testbed(tg_ncsa(), 1000), std::invalid_argument);
}

TEST_F(TestbedTest, SemplarConfigWiresCluster) {
  Testbed tb(das2(), 2);
  const auto cfg = tb.semplar_config(1, 2, 2);
  EXPECT_EQ(cfg.client_host, "das2-node1");
  EXPECT_EQ(cfg.streams_per_node, 2);
  EXPECT_EQ(cfg.conn.tcp_window, das2().tcp_window);
  ASSERT_EQ(cfg.conn.extra.size(), 1u);  // the node I/O bus
  EXPECT_THROW(tb.semplar_config(5), std::invalid_argument);

  const auto unbussed = tb.semplar_config(0, 1, 0, /*charge_bus=*/false);
  EXPECT_TRUE(unbussed.conn.extra.empty());
}

TEST_F(TestbedTest, EndToEndRemoteIo) {
  Testbed tb(tg_ncsa(), 1);
  semplar::SrbfsDriver driver(tb.fabric(), tb.semplar_config(0));
  mpiio::File f(driver, "/e2e/obj",
                mpiio::kModeRead | mpiio::kModeWrite | mpiio::kModeCreate);
  const Bytes data(100 * 1024, 'k');
  f.write_at(0, ByteSpan(data.data(), data.size()));
  Bytes back(data.size());
  EXPECT_EQ(f.read_at(0, MutByteSpan(back.data(), back.size())), data.size());
  EXPECT_EQ(back, data);
  f.close();
}

TEST_F(TestbedTest, WindowCapMakesSecondStreamPay) {
  // On DAS-2 the per-stream cap is ~0.36 MB/s; a 4 MB transfer takes ~11
  // sim-s on one stream and about half on two. Finer scale keeps wall
  // jitter small against those times.
  simnet::ScopedTimeScale fine_scale(150.0);
  Testbed tb(das2(), 1);

  auto timed_write = [&](int streams) {
    semplar::SrbfsDriver driver(tb.fabric(),
                                tb.semplar_config(0, streams, streams));
    mpiio::File f(driver, "/cap/s" + std::to_string(streams),
                  mpiio::kModeRead | mpiio::kModeWrite | mpiio::kModeCreate);
    const Bytes data(4u << 20, 'w');
    const double t0 = simnet::sim_now();
    f.iwrite_at(0, ByteSpan(data.data(), data.size())).wait();
    const double dt = simnet::sim_now() - t0;
    f.close();
    return dt;
  };

  const double one = timed_write(1);
  const double two = timed_write(2);
  EXPECT_LT(two, one * 0.72);
}

TEST_F(TestbedTest, NatThrottlesAggregateOnOsc) {
  // Two OSC nodes writing concurrently share the NAT bucket; the same two
  // flows on TG (no NAT) are much faster in aggregate.
  // Lower scale: the real CPU cost of moving 8 MB through the stack maps
  // to wall x scale and would otherwise blur the shaped-time ratio.
  simnet::ScopedTimeScale fine_scale(100.0);
  auto aggregate_time = [&](const ClusterSpec& cluster) {
    Testbed tb(cluster, 2);
    std::atomic<double> t_end{0.0};
    const double t0 = simnet::sim_now();
    mpi::run(2, [&](mpi::Comm& comm) {
      semplar::SrbfsDriver driver(tb.fabric(), tb.semplar_config(comm.rank(), 2, 2));
      mpiio::File f(driver, "/nat/obj" + std::to_string(comm.rank()),
                    mpiio::kModeWrite | mpiio::kModeCreate);
      const Bytes data(4u << 20, 'n');
      f.iwrite_at(0, ByteSpan(data.data(), data.size())).wait();
      f.close();
      comm.barrier();
      if (comm.rank() == 0) t_end = simnet::sim_now();
    });
    return t_end.load() - t0;
  };

  // Use a NAT-throttled variant to keep the test sharp.
  ClusterSpec osc = osc_p4();
  osc.nat_rate = 1.0e6;  // 1 MB/s total: decisively the bottleneck
  const double osc_time = aggregate_time(osc);
  const double tg_time = aggregate_time(tg_ncsa());
  EXPECT_GT(osc_time, tg_time * 1.5);
}

TEST_F(TestbedTest, MpiTransportChargesNodeBus) {
  Testbed tb(das2(), 2);
  const auto before = tb.node_bus(0)->consumed() + tb.node_bus(1)->consumed();
  mpi::RunOptions opts;
  opts.transport = tb.mpi_transport();
  mpi::run(2,
           [&](mpi::Comm& comm) {
             if (comm.rank() == 0) {
               const Bytes halo(64 * 1024);
               comm.send(1, 0, ByteSpan(halo.data(), halo.size()));
             } else {
               comm.recv(0, 0);
             }
           },
           opts);
  const auto after = tb.node_bus(0)->consumed() + tb.node_bus(1)->consumed();
  EXPECT_EQ(after - before, 2u * 64u * 1024u);  // both ends charged
}

TEST_F(TestbedTest, ComputeScalesWithCpuSpeed) {
  Testbed das(das2(), 1);
  Testbed osc(osc_p4(), 1);
  const double t0 = simnet::sim_now();
  das.compute(1.0);
  const double das_dt = simnet::sim_now() - t0;
  const double t1 = simnet::sim_now();
  osc.compute(1.0);
  const double osc_dt = simnet::sim_now() - t1;
  EXPECT_LT(osc_dt, das_dt);  // 2.4 GHz Xeon vs 1 GHz P-III
}

}  // namespace
}  // namespace remio::testbed
