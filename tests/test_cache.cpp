// Client-side block cache tests: prefetch pattern detection, write-behind
// coalescing bookkeeping, and the cache wired under SemplarFile — a
// randomized property test against an in-memory model, generation-based
// cross-handle invalidation, and eviction under concurrent pins.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "cache/prefetcher.hpp"
#include "cache/writeback.hpp"
#include "common/rng.hpp"
#include "core/semplar.hpp"
#include "simnet/timescale.hpp"
#include "srb/generation.hpp"
#include "srb/server.hpp"

namespace remio::semplar {
namespace {

// --- Prefetcher -------------------------------------------------------------

TEST(Prefetcher, SequentialRunsPredictFollowingBlocks) {
  cache::Prefetcher pf(4);
  EXPECT_TRUE(pf.on_access(0, 1).empty());  // first touch: no pattern yet
  const auto out = pf.on_access(1, 1);      // confirms sequential
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 2u);
  EXPECT_EQ(out[3], 5u);
}

TEST(Prefetcher, VaryingRunLengthsStaySequential) {
  cache::Prefetcher pf(2);
  EXPECT_TRUE(pf.on_access(0, 3).empty());
  const auto out = pf.on_access(3, 1);  // starts where the last run ended
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 4u);
  EXPECT_EQ(out[1], 5u);
}

TEST(Prefetcher, StridedAccessPredictsFootprints) {
  cache::Prefetcher pf(4);
  EXPECT_TRUE(pf.on_access(0, 1).empty());
  EXPECT_FALSE(pf.on_access(10, 1).empty() &&
               false);  // first delta only sets the stride
  const auto out = pf.on_access(20, 1);  // stride 10 confirmed
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0], 30u);
  EXPECT_EQ(out[1], 40u);
}

TEST(Prefetcher, RandomJumpsBreakTheStreakAndBackwardNeverPredicts) {
  cache::Prefetcher pf(4);
  pf.on_access(0, 1);
  pf.on_access(1, 1);
  EXPECT_TRUE(pf.on_access(50, 1).empty());  // jump: new candidate stride
  pf.reset();
  pf.on_access(100, 1);
  pf.on_access(90, 1);
  EXPECT_TRUE(pf.on_access(80, 1).empty());  // backward stride: no prediction
}

TEST(Prefetcher, DisabledDepthNeverPredicts) {
  cache::Prefetcher pf(0);
  pf.on_access(0, 1);
  EXPECT_TRUE(pf.on_access(1, 1).empty());
}

// --- WritebackBuffer --------------------------------------------------------

TEST(Writeback, MergesAdjacentWritesWithinABlock) {
  cache::CacheCounters counters;
  cache::WritebackBuffer wb(1 << 20, &counters);
  EXPECT_FALSE(wb.write_through());
  wb.mark_dirty(0, 0, 100, 4096);
  wb.mark_dirty(0, 100, 200, 4096);  // abuts: coalesces
  EXPECT_EQ(wb.dirty_bytes(), 200u);
  EXPECT_EQ(counters.writeback_coalesced.load(), 1u);
  const auto runs = wb.plan(4096);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].extent.offset, 0u);
  EXPECT_EQ(runs[0].extent.len, 200u);
}

TEST(Writeback, ChainsBlockBoundaryRunsIntoOneWrite) {
  cache::WritebackBuffer wb(1 << 20, nullptr);
  wb.mark_dirty(0, 1000, 4096, 4096);
  wb.mark_dirty(1, 0, 4096, 4096);
  wb.mark_dirty(2, 0, 50, 4096);
  wb.mark_dirty(7, 10, 20, 4096);  // far away: its own run
  const auto runs = wb.plan(4096);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].extent.offset, 1000u);
  EXPECT_EQ(runs[0].extent.len, 4096u - 1000u + 4096u + 50u);
  EXPECT_EQ(runs[0].parts.size(), 3u);
  EXPECT_EQ(runs[1].extent.offset, 7u * 4096 + 10);
}

TEST(Writeback, HighWaterMarkSignalsAndClearResets) {
  cache::WritebackBuffer wb(300, nullptr);
  EXPECT_FALSE(wb.mark_dirty(0, 0, 200, 4096));
  EXPECT_TRUE(wb.mark_dirty(1, 0, 200, 4096));  // 400 >= 300
  wb.clear(0);
  EXPECT_EQ(wb.dirty_bytes(), 200u);
  wb.clear_all();
  EXPECT_TRUE(wb.empty());
}

// --- Generation attribute ---------------------------------------------------

TEST(Generation, FormatParseRoundTripAndMalformed) {
  srb::Generation g{42, "node0#3"};
  EXPECT_EQ(srb::parse_generation(srb::format_generation(g)), g);
  EXPECT_EQ(srb::parse_generation("").counter, 0u);
  EXPECT_EQ(srb::parse_generation("junk").counter, 0u);
  EXPECT_EQ(srb::parse_generation("12junk:w").counter, 0u);
}

// --- Config knobs -----------------------------------------------------------

TEST(CacheConfig, ValidateRejectsInconsistentKnobs) {
  Config cfg;
  cfg.client_host = "node0";
  validate(cfg);  // defaults: cache off

  Config bad = cfg;
  bad.cache_block_bytes = 0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = cfg;
  bad.cache_bytes = 100;  // below one block
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = cfg;
  bad.readahead_blocks = 2;  // needs cache_bytes
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = cfg;
  bad.writeback_hwm = 4096;  // needs cache_bytes
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = cfg;
  bad.cache_bytes = 1u << 20;
  bad.writeback_hwm = 2u << 20;  // exceeds capacity
  EXPECT_THROW(validate(bad), std::invalid_argument);

  Config good = cfg;
  good.cache_bytes = 1u << 20;
  good.cache_block_bytes = 64 * 1024;
  good.readahead_blocks = 4;
  good.writeback_hwm = 256 * 1024;
  validate(good);
}

// --- AsyncEngine::try_submit ------------------------------------------------

TEST(AsyncEngine, TrySubmitFailsOnFullQueueInsteadOfBlocking) {
  AsyncEngine engine(1, 1);
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  // Occupy the worker, then fill the 1-slot queue.
  auto blocker = engine.submit([&] {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return std::size_t{0};
  });
  while (!engine.try_submit([&] {
    ++ran;
    return std::size_t{0};
  })) {
    // The blocker may not have dequeued yet; once it has, the slot is free.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Queue now holds one item and the worker is busy: must refuse, not hang.
  EXPECT_FALSE(engine.try_submit([&] {
    ++ran;
    return std::size_t{0};
  }));
  release = true;
  blocker.wait();
  engine.drain();
  EXPECT_EQ(ran.load(), 1);
  engine.shutdown();
  EXPECT_FALSE(engine.try_submit([] { return std::size_t{0}; }));
}

// --- SemplarFile with the cache over a live broker --------------------------

class CachedFileTest : public ::testing::Test {
 protected:
  CachedFileTest() : scale_(2000.0) {
    simnet::HostSpec server_host;
    server_host.name = "orion";
    fabric_.add_host(server_host);
    simnet::HostSpec node;
    node.name = "node0";
    node.latency_to_core = 0.002;
    fabric_.add_host(node);
    server_ = std::make_unique<srb::SrbServer>(fabric_, srb::ServerConfig{});
    server_->start();
  }

  Config config(int streams = 1, int io_threads = 0) {
    Config cfg;
    cfg.client_host = "node0";
    cfg.streams_per_node = streams;
    cfg.io_threads = io_threads;
    cfg.conn.tcp_window = 0;  // unshaped for functional tests
    return cfg;
  }

  Config cached_config(std::size_t cache_bytes, std::size_t block_bytes,
                       int readahead, std::size_t hwm, int streams = 1,
                       int io_threads = 0) {
    Config cfg = config(streams, io_threads);
    cfg.cache_bytes = cache_bytes;
    cfg.cache_block_bytes = block_bytes;
    cfg.readahead_blocks = readahead;
    cfg.writeback_hwm = hwm;
    return cfg;
  }

  simnet::ScopedTimeScale scale_;
  simnet::Fabric fabric_;
  std::unique_ptr<srb::SrbServer> server_;
};

TEST_F(CachedFileTest, ReReadIsServedFromCache) {
  SrbfsDriver driver(fabric_, cached_config(1u << 20, 64 * 1024, 0, 0));
  mpiio::File f(driver, "/c/hot",
                mpiio::kModeRead | mpiio::kModeWrite | mpiio::kModeCreate);
  remio::Rng rng(7);
  const Bytes data = rng.bytes(256 * 1024);
  ASSERT_EQ(f.write_at(0, ByteSpan(data.data(), data.size())), data.size());

  auto* sf = dynamic_cast<SemplarFile*>(&f.handle());
  ASSERT_NE(sf, nullptr);
  Bytes back(data.size());
  for (int pass = 0; pass < 3; ++pass) {
    std::fill(back.begin(), back.end(), 0);
    ASSERT_EQ(f.read_at(0, MutByteSpan(back.data(), back.size())), back.size());
    EXPECT_EQ(back, data);
  }
  const auto snap = sf->stats().snapshot();
  // The write populated every block, so every read pass hits entirely.
  EXPECT_EQ(snap.cache_misses, 0u);
  EXPECT_GT(snap.cache_hits, 0u);
  f.close();
}

TEST_F(CachedFileTest, SequentialReadsTriggerUsefulPrefetch) {
  // Seed through an uncached handle so the reader's cache starts cold.
  SrbfsDriver seed(fabric_, config());
  remio::Rng rng(11);
  const std::size_t block = 32 * 1024;
  const Bytes data = rng.bytes(32 * block);
  {
    mpiio::File f(seed, "/c/seq",
                  mpiio::kModeWrite | mpiio::kModeCreate | mpiio::kModeTrunc);
    ASSERT_EQ(f.write_at(0, ByteSpan(data.data(), data.size())), data.size());
    f.close();
  }

  SrbfsDriver driver(fabric_, cached_config(64u << 20, block, 4, 0, 1, 2));
  mpiio::File f(driver, "/c/seq", mpiio::kModeRead);
  auto* sf = dynamic_cast<SemplarFile*>(&f.handle());
  Bytes back(data.size());
  for (std::size_t off = 0; off < data.size(); off += block) {
    ASSERT_EQ(f.read_at(off, MutByteSpan(back.data() + off, block)), block);
    // Give speculative fills headroom to land ahead of the next demand read.
    simnet::sleep_sim(0.05);
  }
  EXPECT_EQ(Bytes(back.begin(), back.end()), data);
  const auto snap = sf->stats().snapshot();
  EXPECT_GT(snap.prefetch_issued, 0u);
  EXPECT_GT(snap.prefetch_useful, 0u);
  f.close();
}

TEST_F(CachedFileTest, WriteBehindCoalescesSmallWrites) {
  const std::size_t block = 64 * 1024;
  SrbfsDriver driver(fabric_, cached_config(4u << 20, block, 0, 1u << 20));
  mpiio::File f(driver, "/c/wb",
                mpiio::kModeRead | mpiio::kModeWrite | mpiio::kModeCreate);
  auto* sf = dynamic_cast<SemplarFile*>(&f.handle());

  // 256 sequential 1 KB writes stay under the 1 MB high-water mark.
  remio::Rng rng(13);
  const Bytes data = rng.bytes(256 * 1024);
  for (std::size_t off = 0; off < data.size(); off += 1024)
    ASSERT_EQ(f.write_at(off, ByteSpan(data.data() + off, 1024)), 1024u);

  const auto before = sf->stats().snapshot();
  EXPECT_EQ(before.writeback_flushes, 0u);  // nothing reached the wire yet
  EXPECT_GT(before.writeback_coalesced, 200u);
  EXPECT_EQ(f.size(), data.size());  // logical size includes dirty bytes

  f.flush();
  const auto after = sf->stats().snapshot();
  EXPECT_GE(after.writeback_flushes, 1u);
  EXPECT_LE(after.writeback_flushes, 2u);  // one contiguous run (+ slack)

  // Broker now has the bytes: verify through a second, uncached handle.
  SrbfsDriver plain(fabric_, config());
  mpiio::File g(plain, "/c/wb", mpiio::kModeRead);
  Bytes back(data.size());
  ASSERT_EQ(g.read_at(0, MutByteSpan(back.data(), back.size())), back.size());
  EXPECT_EQ(back, data);
  g.close();
  f.close();
}

TEST_F(CachedFileTest, HighWaterMarkFlushesWithoutExplicitFlush) {
  const std::size_t block = 16 * 1024;
  SrbfsDriver driver(fabric_, cached_config(2u << 20, block, 0, 64 * 1024));
  mpiio::File f(driver, "/c/hwm",
                mpiio::kModeWrite | mpiio::kModeCreate | mpiio::kModeTrunc);
  auto* sf = dynamic_cast<SemplarFile*>(&f.handle());
  const Bytes chunk(8 * 1024, 'x');
  for (int i = 0; i < 32; ++i)  // 256 KB total, hwm = 64 KB
    ASSERT_EQ(f.write_at(static_cast<std::uint64_t>(i) * chunk.size(),
                         ByteSpan(chunk.data(), chunk.size())),
              chunk.size());
  EXPECT_GE(sf->stats().snapshot().writeback_flushes, 3u);
  f.close();
}

TEST_F(CachedFileTest, GenerationBumpInvalidatesOtherHandle) {
  const Bytes v1(64 * 1024, 'a');
  const Bytes v2(64 * 1024, 'b');

  SrbfsDriver driver_a(fabric_, cached_config(1u << 20, 16 * 1024, 0, 0));
  SrbfsDriver driver_b(fabric_, cached_config(1u << 20, 16 * 1024, 0, 0));
  mpiio::File a(driver_a, "/c/shared",
                mpiio::kModeRead | mpiio::kModeWrite | mpiio::kModeCreate);
  ASSERT_EQ(a.write_at(0, ByteSpan(v1.data(), v1.size())), v1.size());
  a.flush();  // publishes generation 1

  mpiio::File b(driver_b, "/c/shared", mpiio::kModeRead);
  Bytes back(v1.size());
  ASSERT_EQ(b.read_at(0, MutByteSpan(back.data(), back.size())), back.size());
  EXPECT_EQ(back, v1);  // b now caches v1

  ASSERT_EQ(a.write_at(0, ByteSpan(v2.data(), v2.size())), v2.size());
  a.flush();  // bumps the generation again

  // b's next size() observes the foreign generation and drops its blocks.
  EXPECT_EQ(b.size(), v2.size());
  ASSERT_EQ(b.read_at(0, MutByteSpan(back.data(), back.size())), back.size());
  EXPECT_EQ(back, v2);

  auto* sb = dynamic_cast<SemplarFile*>(&b.handle());
  EXPECT_GT(sb->stats().snapshot().cache_misses, 0u);  // re-fetched after drop
  b.close();
  a.close();
}

TEST_F(CachedFileTest, OwnFlushDoesNotSelfInvalidate) {
  SrbfsDriver driver(fabric_, cached_config(1u << 20, 16 * 1024, 0, 0));
  mpiio::File f(driver, "/c/self",
                mpiio::kModeRead | mpiio::kModeWrite | mpiio::kModeCreate);
  const Bytes data(64 * 1024, 'q');
  ASSERT_EQ(f.write_at(0, ByteSpan(data.data(), data.size())), data.size());
  f.flush();
  EXPECT_EQ(f.size(), data.size());  // generation check: our own tag
  auto* sf = dynamic_cast<SemplarFile*>(&f.handle());
  const auto snap_before = sf->stats().snapshot();
  Bytes back(data.size());
  ASSERT_EQ(f.read_at(0, MutByteSpan(back.data(), back.size())), back.size());
  const auto snap_after = sf->stats().snapshot();
  EXPECT_EQ(snap_after.cache_misses, snap_before.cache_misses);  // still hot
  f.close();
}

TEST_F(CachedFileTest, EvictionUnderConcurrentPinsStress) {
  // Capacity of 4 blocks, far more blocks touched, 4 I/O threads issuing
  // async cached reads concurrently: eviction constantly runs against
  // pinned/filling blocks and must neither deadlock nor corrupt data.
  const std::size_t block = 8 * 1024;
  SrbfsDriver driver(fabric_, cached_config(4 * block, block, 0, 0, 2, 4));
  mpiio::File f(driver, "/c/stress",
                mpiio::kModeRead | mpiio::kModeWrite | mpiio::kModeCreate);
  remio::Rng rng(17);
  const Bytes data = rng.bytes(64 * block);
  ASSERT_EQ(f.write_at(0, ByteSpan(data.data(), data.size())), data.size());

  remio::Rng pick(18);
  std::vector<Bytes> bufs;
  std::vector<mpiio::IoRequest> reqs;
  std::vector<std::uint64_t> offs;
  bufs.reserve(64);
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t off =
        (pick.next() % (data.size() - 2 * block)) & ~std::uint64_t{7};
    const std::size_t len = block + static_cast<std::size_t>(pick.next() % block);
    bufs.emplace_back(len);
    offs.push_back(off);
    reqs.push_back(f.iread_at(off, MutByteSpan(bufs.back().data(), len)));
  }
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const std::size_t n = reqs[i].wait();
    ASSERT_EQ(n, bufs[i].size());
    EXPECT_TRUE(std::equal(bufs[i].begin(), bufs[i].end(),
                           data.begin() + static_cast<std::ptrdiff_t>(offs[i])))
        << "async read " << i << " at " << offs[i];
  }
  auto* sf = dynamic_cast<SemplarFile*>(&f.handle());
  EXPECT_LE(sf->cache()->resident_blocks(), 16u);  // stayed near capacity
  f.close();
}

TEST_F(CachedFileTest, RandomizedMixedOpsMatchUncachedModel) {
  // Property test: a cached file driven with random reads, writes (sync and
  // async), flushes and size queries behaves byte-for-byte like a plain
  // in-memory file. Small cache forces eviction; write-behind + read-ahead
  // are both on; two streams and two I/O threads exercise concurrency.
  const std::size_t block = 4 * 1024;
  const std::size_t file_span = 96 * block;
  SrbfsDriver driver(fabric_,
                     cached_config(8 * block, block, 2, 16 * 1024, 2, 2));
  mpiio::File f(driver, "/c/prop",
                mpiio::kModeRead | mpiio::kModeWrite | mpiio::kModeCreate |
                    mpiio::kModeTrunc);

  remio::Rng rng(23);
  Bytes model;  // logical file contents; reads past the end are short
  for (int step = 0; step < 400; ++step) {
    const std::uint64_t what = rng.next() % 100;
    const std::uint64_t off = rng.next() % file_span;
    const std::size_t len =
        1 + static_cast<std::size_t>(rng.next() % (3 * block));
    if (what < 40) {  // write
      const Bytes data = rng.bytes(len);
      if (off + len > model.size()) model.resize(off + len, 0);
      std::copy(data.begin(), data.end(),
                model.begin() + static_cast<std::ptrdiff_t>(off));
      if (what < 10) {
        ASSERT_EQ(f.iwrite_at(off, ByteSpan(data.data(), data.size())).wait(),
                  data.size());
      } else {
        ASSERT_EQ(f.write_at(off, ByteSpan(data.data(), data.size())), data.size());
      }
    } else if (what < 85) {  // read and compare against the model
      Bytes got(len, static_cast<char>(0xee));
      const std::size_t n = what < 55
                                ? f.iread_at(off, MutByteSpan(got.data(), len)).wait()
                                : f.read_at(off, MutByteSpan(got.data(), len));
      const std::size_t expect =
          off >= model.size()
              ? 0
              : std::min(len, static_cast<std::size_t>(model.size() - off));
      ASSERT_EQ(n, expect) << "read at " << off << " len " << len;
      EXPECT_TRUE(std::equal(got.begin(),
                             got.begin() + static_cast<std::ptrdiff_t>(n),
                             model.begin() + static_cast<std::ptrdiff_t>(off)))
          << "step " << step;
    } else if (what < 95) {  // size
      ASSERT_EQ(f.size(), model.size());
    } else {
      f.flush();
    }
  }
  f.flush();

  // Everything must have reached the broker: verify with an uncached handle.
  SrbfsDriver plain(fabric_, config());
  mpiio::File g(plain, "/c/prop", mpiio::kModeRead);
  ASSERT_EQ(g.size(), model.size());
  Bytes final(model.size());
  ASSERT_EQ(g.read_at(0, MutByteSpan(final.data(), final.size())), final.size());
  EXPECT_EQ(final, model);
  g.close();
  f.close();
}

TEST_F(CachedFileTest, GapWritesReadBackAsZeros) {
  SrbfsDriver driver(fabric_, cached_config(1u << 20, 16 * 1024, 0, 32 * 1024));
  mpiio::File f(driver, "/c/gap",
                mpiio::kModeRead | mpiio::kModeWrite | mpiio::kModeCreate);
  const Bytes tail(100, 't');
  const std::uint64_t far = 70 * 1024;  // several blocks past EOF
  ASSERT_EQ(f.write_at(far, ByteSpan(tail.data(), tail.size())), tail.size());
  EXPECT_EQ(f.size(), far + tail.size());

  Bytes hole(1024);
  ASSERT_EQ(f.read_at(10 * 1024, MutByteSpan(hole.data(), hole.size())),
            hole.size());
  EXPECT_TRUE(std::all_of(hole.begin(), hole.end(), [](char c) { return c == 0; }));
  f.flush();

  SrbfsDriver plain(fabric_, config());
  mpiio::File g(plain, "/c/gap", mpiio::kModeRead);
  EXPECT_EQ(g.size(), far + tail.size());
  Bytes back(tail.size());
  ASSERT_EQ(g.read_at(far, MutByteSpan(back.data(), back.size())), back.size());
  EXPECT_EQ(back, tail);
  g.close();
  f.close();
}

// --- Cache-resident integrity (client-memory rot) ---------------------------

TEST_F(CachedFileTest, ResidentRotIsCaughtByVerifyResident) {
  // Fill four blocks from the broker (fills compute CRCs), then silently
  // flip one resident byte: verify_resident must find exactly that block.
  {
    SrbfsDriver seed_driver(fabric_, config());
    mpiio::File w(seed_driver, "/c/rot",
                  mpiio::kModeRead | mpiio::kModeWrite | mpiio::kModeCreate);
    const Bytes data = remio::Rng(41).bytes(256 * 1024);
    ASSERT_EQ(w.write_at(0, ByteSpan(data.data(), data.size())), data.size());
    w.close();
  }
  SrbfsDriver driver(fabric_, cached_config(1u << 20, 64 * 1024, 0, 0));
  mpiio::File f(driver, "/c/rot", mpiio::kModeRead);
  auto* sf = dynamic_cast<SemplarFile*>(&f.handle());
  ASSERT_NE(sf, nullptr);
  Bytes back(256 * 1024);
  ASSERT_EQ(f.read_at(0, MutByteSpan(back.data(), back.size())), back.size());
  ASSERT_EQ(sf->cache()->resident_blocks(), 4u);

  EXPECT_EQ(sf->cache()->verify_resident(), 0u);  // clean scrub
  const auto clean = sf->stats().snapshot();
  EXPECT_EQ(clean.cache_integrity_verified, 4u);
  EXPECT_EQ(clean.cache_integrity_failures, 0u);

  sf->cache()->debug_flip_byte(70000);  // inside block 1
  EXPECT_EQ(sf->cache()->verify_resident(), 1u);
  const auto snap = sf->stats().snapshot();
  EXPECT_EQ(snap.cache_integrity_verified, 8u);
  EXPECT_EQ(snap.cache_integrity_failures, 1u);
  f.close();
}

TEST_F(CachedFileTest, CleanEvictionRunsAFinalSumCheck) {
  // Last-chance detection: a clean block leaving the cache is checked, so
  // rot is noticed even if nobody ever called verify_resident.
  {
    SrbfsDriver seed_driver(fabric_, config());
    mpiio::File w(seed_driver, "/c/evict-rot",
                  mpiio::kModeRead | mpiio::kModeWrite | mpiio::kModeCreate);
    const Bytes data = remio::Rng(43).bytes(192 * 1024);
    ASSERT_EQ(w.write_at(0, ByteSpan(data.data(), data.size())), data.size());
    w.close();
  }
  // Two-block capacity: reading a third block evicts the LRU (block 0).
  SrbfsDriver driver(fabric_, cached_config(128 * 1024, 64 * 1024, 0, 0));
  mpiio::File f(driver, "/c/evict-rot", mpiio::kModeRead);
  auto* sf = dynamic_cast<SemplarFile*>(&f.handle());
  ASSERT_NE(sf, nullptr);
  Bytes buf(64 * 1024);
  ASSERT_EQ(f.read_at(0, MutByteSpan(buf.data(), buf.size())), buf.size());
  ASSERT_EQ(f.read_at(64 * 1024, MutByteSpan(buf.data(), buf.size())),
            buf.size());
  sf->cache()->debug_flip_byte(1234);  // rot block 0 while it is resident
  ASSERT_EQ(f.read_at(128 * 1024, MutByteSpan(buf.data(), buf.size())),
            buf.size());  // forces the eviction of block 0
  const auto snap = sf->stats().snapshot();
  EXPECT_GE(snap.cache_integrity_failures, 1u);
  f.close();
}

TEST_F(CachedFileTest, LocalWritesStaleTheSumWithoutFalsePositives) {
  // A write through the cache makes the block's CRC stale (dirty data is
  // covered by wire + at-rest checksums once flushed); the staled block is
  // skipped by scrubs — never misreported — and serves correct bytes.
  SrbfsDriver driver(fabric_, cached_config(1u << 20, 64 * 1024, 0, 0));
  mpiio::File f(driver, "/c/stale",
                mpiio::kModeRead | mpiio::kModeWrite | mpiio::kModeCreate);
  auto* sf = dynamic_cast<SemplarFile*>(&f.handle());
  ASSERT_NE(sf, nullptr);
  const Bytes data = remio::Rng(47).bytes(64 * 1024);
  ASSERT_EQ(f.write_at(0, ByteSpan(data.data(), data.size())), data.size());
  f.flush();
  // Fresh fill (drop + re-read) so the block has a live CRC...
  sf->cache()->invalidate();
  Bytes back(data.size());
  ASSERT_EQ(f.read_at(0, MutByteSpan(back.data(), back.size())), back.size());
  EXPECT_EQ(sf->cache()->verify_resident(), 0u);
  // ...then overwrite part of it: the sum goes stale, scrubs skip it.
  const Bytes patch(100, 'z');
  ASSERT_EQ(f.write_at(5000, ByteSpan(patch.data(), patch.size())),
            patch.size());
  EXPECT_EQ(sf->cache()->verify_resident(), 0u);
  const auto snap = sf->stats().snapshot();
  EXPECT_EQ(snap.cache_integrity_failures, 0u);
  ASSERT_EQ(f.read_at(0, MutByteSpan(back.data(), back.size())), back.size());
  Bytes expect = data;
  std::copy(patch.begin(), patch.end(), expect.begin() + 5000);
  EXPECT_EQ(back, expect);
  f.close();
}

TEST_F(CachedFileTest, CacheVerifyCanBeDisabled) {
  {
    SrbfsDriver seed_driver(fabric_, config());
    mpiio::File w(seed_driver, "/c/noverify",
                  mpiio::kModeRead | mpiio::kModeWrite | mpiio::kModeCreate);
    const Bytes data(128 * 1024, 'n');
    ASSERT_EQ(w.write_at(0, ByteSpan(data.data(), data.size())), data.size());
    w.close();
  }
  Config cfg = cached_config(1u << 20, 64 * 1024, 0, 0);
  cfg.integrity.cache_verify = false;
  SrbfsDriver driver(fabric_, cfg);
  mpiio::File f(driver, "/c/noverify", mpiio::kModeRead);
  auto* sf = dynamic_cast<SemplarFile*>(&f.handle());
  ASSERT_NE(sf, nullptr);
  Bytes back(128 * 1024);
  ASSERT_EQ(f.read_at(0, MutByteSpan(back.data(), back.size())), back.size());
  sf->cache()->debug_flip_byte(10);  // nobody is looking
  EXPECT_EQ(sf->cache()->verify_resident(), 0u);
  const auto snap = sf->stats().snapshot();
  EXPECT_EQ(snap.cache_integrity_verified, 0u);
  EXPECT_EQ(snap.cache_integrity_failures, 0u);
  f.close();
}

TEST_F(CachedFileTest, DefaultConfigBypassesCacheEntirely) {
  SrbfsDriver driver(fabric_, config());
  auto handle = driver.open("/c/plain", mpiio::kModeWrite | mpiio::kModeCreate);
  auto* sf = dynamic_cast<SemplarFile*>(handle.get());
  ASSERT_NE(sf, nullptr);
  EXPECT_FALSE(sf->cached());
  const Bytes data(4096, 'p');
  sf->write_at(0, ByteSpan(data.data(), data.size()));
  const auto snap = sf->stats().snapshot();
  EXPECT_EQ(snap.cache_hits + snap.cache_misses, 0u);
  handle.reset();
}

}  // namespace
}  // namespace remio::semplar
