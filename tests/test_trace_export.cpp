// Chrome trace_event export: golden-file schema checks (pid/tid/ts/dur/ph
// on every event), lossless span round-trip through the JSON, analyzer
// equivalence on original vs re-imported spans, and malformed-input
// rejection.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "obs/analyzer.hpp"
#include "obs/span.hpp"
#include "obs/trace_export.hpp"

namespace remio::obs {
namespace {

Span make_span(std::uint64_t op, SpanKind kind, double enq, double deq,
               double ws, double we, std::uint64_t bytes = 0,
               std::int16_t stream = -1, std::uint16_t rank = 0,
               std::uint32_t tid = 1) {
  Span s;
  s.op_id = op;
  s.kind = kind;
  s.stream = stream;
  s.rank = rank;
  s.tid = tid;
  s.bytes = bytes;
  s.enqueue = enq;
  s.dequeue = deq;
  s.wire_start = ws;
  s.wire_end = we;
  return s;
}

std::vector<Span> sample_spans() {
  std::vector<Span> spans;
  spans.push_back(make_span(1, SpanKind::kTask, 1.0, 1.25, 1.5, 3.0, 4096, -1, 0, 7));
  spans.push_back(make_span(1, SpanKind::kWire, 1.5, 1.5, 1.5, 2.75, 4096, 0, 0, 8));
  spans.push_back(make_span(2, SpanKind::kWire, 1.5, 1.5, 1.6, 2.9, 2048, 1, 0, 9));
  spans.push_back(make_span(3, SpanKind::kCompute, 0.0, 0.0, 0.0, 2.0, 0, -1, 1, 7));
  spans.push_back(make_span(4, SpanKind::kCacheHit, 2.0, 2.0, 2.0, 2.0, 512, -1, 1, 7));
  return spans;
}

std::string to_json(const std::vector<Span>& spans) {
  std::ostringstream os;
  write_chrome_trace(os, spans);
  return os.str();
}

// --- golden / schema --------------------------------------------------------

TEST(TraceExportTest, GoldenEventForSimpleSpan) {
  // One span with round timestamps: the emitted event must carry the exact
  // trace_event fields with ts/dur in integer microseconds.
  const std::string json =
      to_json({make_span(1, SpanKind::kWire, 1.5, 1.5, 1.5, 2.75, 4096, 0)});
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"wire\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"obs\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1500000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1250000"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
  // Wire spans get the synthetic per-stream lane 1000 + stream.
  EXPECT_NE(json.find("\"tid\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":4096"), std::string::npos);
}

TEST(TraceExportTest, EveryEventCarriesRequiredSchemaKeys) {
  const std::string json = to_json(sample_spans());
  std::size_t events = 0;
  for (std::size_t at = json.find("{\"name\""); at != std::string::npos;
       at = json.find("{\"name\"", at + 1)) {
    const std::size_t end = json.find("}}", at);
    ASSERT_NE(end, std::string::npos);
    const std::string ev = json.substr(at, end - at);
    for (const char* key : {"\"ph\":\"X\"", "\"ts\":", "\"dur\":", "\"pid\":",
                            "\"tid\":", "\"args\":"})
      EXPECT_NE(ev.find(key), std::string::npos)
          << "event " << events << " missing " << key;
    ++events;
  }
  EXPECT_EQ(events, sample_spans().size());
}

// --- round-trip -------------------------------------------------------------

TEST(TraceExportTest, RoundTripPreservesEverySpanField) {
  const auto original = sample_spans();
  std::istringstream is(to_json(original));
  const auto back = read_chrome_trace(is);
  ASSERT_EQ(back.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const Span& a = original[i];
    const Span& b = back[i];
    EXPECT_EQ(a.op_id, b.op_id) << i;
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.stream, b.stream) << i;
    EXPECT_EQ(a.rank, b.rank) << i;
    EXPECT_EQ(a.tid, b.tid) << i;
    EXPECT_EQ(a.bytes, b.bytes) << i;
    // args carry %.17g sim seconds: bit-exact round-trip.
    EXPECT_EQ(a.enqueue, b.enqueue) << i;
    EXPECT_EQ(a.dequeue, b.dequeue) << i;
    EXPECT_EQ(a.wire_start, b.wire_start) << i;
    EXPECT_EQ(a.wire_end, b.wire_end) << i;
  }
}

TEST(TraceExportTest, RoundTripIsBitExactOnAwkwardDoubles) {
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> t(0.0, 1e6);
  std::vector<Span> spans;
  for (int i = 0; i < 200; ++i) {
    const double a = t(rng);
    const double b = a + t(rng) * 1e-9;  // sub-ns increments stress %.17g
    const double c = b + t(rng) * 1e-3;
    const double d = c + t(rng);
    spans.push_back(make_span(static_cast<std::uint64_t>(i + 1),
                              SpanKind::kIwrite, a, b, c, d, 1, -1));
  }
  std::istringstream is(to_json(spans));
  const auto back = read_chrome_trace(is);
  ASSERT_EQ(back.size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].enqueue, back[i].enqueue) << i;
    EXPECT_EQ(spans[i].dequeue, back[i].dequeue) << i;
    EXPECT_EQ(spans[i].wire_start, back[i].wire_start) << i;
    EXPECT_EQ(spans[i].wire_end, back[i].wire_end) << i;
  }
}

TEST(TraceExportTest, AnalyzerAgreesOnOriginalAndReimportedSpans) {
  const auto original = sample_spans();
  std::istringstream is(to_json(original));
  const auto back = read_chrome_trace(is);
  const OverlapReport ra = ObsAnalyzer(original).analyze();
  const OverlapReport rb = ObsAnalyzer(back).analyze();
  EXPECT_EQ(ra.span_count, rb.span_count);
  EXPECT_DOUBLE_EQ(ra.exec, rb.exec);
  EXPECT_DOUBLE_EQ(ra.compute_busy, rb.compute_busy);
  EXPECT_DOUBLE_EQ(ra.io_busy, rb.io_busy);
  EXPECT_DOUBLE_EQ(ra.overlapped, rb.overlapped);
  EXPECT_DOUBLE_EQ(ra.achieved_of_max, rb.achieved_of_max);
  ASSERT_EQ(ra.streams.size(), rb.streams.size());
  for (std::size_t i = 0; i < ra.streams.size(); ++i) {
    EXPECT_EQ(ra.streams[i].stream, rb.streams[i].stream);
    EXPECT_DOUBLE_EQ(ra.streams[i].busy, rb.streams[i].busy);
    EXPECT_EQ(ra.streams[i].bytes, rb.streams[i].bytes);
  }
}

TEST(TraceExportTest, EmptySpanSetStillValidJson) {
  std::istringstream is(to_json({}));
  EXPECT_TRUE(read_chrome_trace(is).empty());
}

// --- robustness -------------------------------------------------------------

TEST(TraceExportTest, MalformedJsonThrows) {
  for (const char* bad : {"", "{", "[1,2", "{\"traceEvents\":}",
                          "{\"traceEvents\":[{]}", "nonsense"}) {
    std::istringstream is(bad);
    EXPECT_THROW(read_chrome_trace(is), std::runtime_error) << bad;
  }
}

TEST(TraceExportTest, ForeignEventsAreSkippedNotFatal) {
  // A trace_event file from another tool: valid JSON, but no obs args.
  std::istringstream is(
      R"({"traceEvents":[{"name":"x","ph":"X","ts":1,"dur":2,"pid":0,"tid":0}]})");
  EXPECT_TRUE(read_chrome_trace(is).empty());
}

// --- text report ------------------------------------------------------------

TEST(TraceExportTest, TextReportContainsOverlapAndStreamLines) {
  std::ostringstream os;
  write_text_report(os, sample_spans());
  const std::string report = os.str();
  EXPECT_NE(report.find("of maximum overlap"), std::string::npos);
  EXPECT_NE(report.find("stream 0"), std::string::npos);
  EXPECT_NE(report.find("stream 1"), std::string::npos);
  EXPECT_NE(report.find("wire"), std::string::npos);
  EXPECT_NE(report.find("compute"), std::string::npos);
}

TEST(TraceExportTest, TextReportOnEmptySpanSetIsBenign) {
  std::ostringstream os;
  write_text_report(os, {});
  EXPECT_FALSE(os.str().empty());
}

}  // namespace
}  // namespace remio::obs
