// Failure-injection tests: broker death mid-operation, engine behaviour
// after task failures, corrupted compressed objects, and rank crashes —
// errors must surface on the right call and never hang or crash.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/semplar.hpp"
#include "minimpi/runtime.hpp"
#include "simnet/timescale.hpp"
#include "srb/server.hpp"

namespace remio {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  FailureTest() : scale_(2000.0) {
    simnet::HostSpec server_host;
    server_host.name = "orion";
    fabric_.add_host(server_host);
    simnet::HostSpec node;
    node.name = "node0";
    fabric_.add_host(node);
    server_ = std::make_unique<srb::SrbServer>(fabric_, srb::ServerConfig{});
    server_->start();
  }

  semplar::Config config(int streams = 1) {
    semplar::Config cfg;
    cfg.client_host = "node0";
    cfg.streams_per_node = streams;
    cfg.io_threads = streams;
    cfg.conn.tcp_window = 0;
    return cfg;
  }

  simnet::ScopedTimeScale scale_;
  simnet::Fabric fabric_;
  std::unique_ptr<srb::SrbServer> server_;
};

TEST_F(FailureTest, SyncWriteFailsAfterServerStop) {
  semplar::SrbfsDriver driver(fabric_, config());
  mpiio::File f(driver, "/f/a", mpiio::kModeRead | mpiio::kModeWrite |
                                    mpiio::kModeCreate);
  server_->stop();
  const Bytes data(64 * 1024, 'x');
  EXPECT_ANY_THROW(f.write_at(0, ByteSpan(data.data(), data.size())));
}

TEST_F(FailureTest, ConnectRefusedAfterServerStop) {
  server_->stop();
  EXPECT_ANY_THROW(semplar::SrbfsDriver(fabric_, config())
                       .open("/f/b", mpiio::kModeWrite | mpiio::kModeCreate));
}

TEST_F(FailureTest, AsyncErrorDeliveredOnWaitNotSubmit) {
  semplar::SrbfsDriver driver(fabric_, config());
  mpiio::File f(driver, "/f/c", mpiio::kModeRead | mpiio::kModeWrite |
                                    mpiio::kModeCreate);
  server_->stop();
  const Bytes data(64 * 1024, 'y');
  // Submission itself must not throw; the failure belongs to the request.
  mpiio::IoRequest req = f.iwrite_at(0, ByteSpan(data.data(), data.size()));
  EXPECT_ANY_THROW(req.wait());
}

TEST_F(FailureTest, EngineKeepsServingAfterFailedTask) {
  semplar::AsyncEngine engine(1, 16, false);
  auto bad = engine.submit([]() -> std::size_t { throw mpiio::IoError("boom"); });
  auto good = engine.submit([] { return std::size_t{11}; });
  EXPECT_THROW(bad.wait(), mpiio::IoError);
  EXPECT_EQ(good.wait(), 11u);  // the I/O thread survived the exception
}

TEST_F(FailureTest, StripedWriteOneStreamDiesOthersReport) {
  // Kill the broker mid-striped-write: the master request must fail (not
  // hang), and subsequent waits stay failed.
  semplar::Config cfg = config(2);
  cfg.stripe_size = 64 * 1024;
  semplar::SrbfsDriver driver(fabric_, cfg);
  mpiio::File f(driver, "/f/d", mpiio::kModeRead | mpiio::kModeWrite |
                                    mpiio::kModeCreate);
  Rng rng(9);
  const Bytes data = rng.bytes(1 << 20);
  server_->stop();
  mpiio::IoRequest req = f.iwrite_at(0, ByteSpan(data.data(), data.size()));
  EXPECT_ANY_THROW(req.wait());
  EXPECT_TRUE(req.test());
}

TEST_F(FailureTest, CorruptedCompressedObjectDetectedOnRead) {
  semplar::SrbfsDriver driver(fabric_, config());
  auto handle = driver.open("/f/z", mpiio::kModeRead | mpiio::kModeWrite |
                                        mpiio::kModeCreate);
  {
    semplar::CompressPipe pipe(*handle, compress::codec_by_name("lzmini"));
    const Bytes block(100 * 1024, 'c');
    pipe.write(ByteSpan(block.data(), block.size()));
    pipe.finish();
  }
  // Corrupt one byte of the stored frame payload via a direct client.
  {
    srb::SrbClient client(fabric_, "node0", "orion", 5544);
    const auto fd = client.open("/f/z", srb::kRead | srb::kWrite);
    const Bytes evil = to_bytes("X");
    client.pwrite(fd, ByteSpan(evil.data(), evil.size()), 40);
    client.close(fd);
  }
  EXPECT_THROW(semplar::read_all_decompressed(*handle), compress::CodecError);
}

TEST_F(FailureTest, TruncatedCompressedObjectDetected) {
  semplar::SrbfsDriver driver(fabric_, config());
  auto handle = driver.open("/f/t", mpiio::kModeRead | mpiio::kModeWrite |
                                        mpiio::kModeCreate);
  {
    semplar::CompressPipe pipe(*handle, compress::codec_by_name("lzmini"));
    const Bytes block(50 * 1024, 't');
    pipe.write(ByteSpan(block.data(), block.size()));
    pipe.finish();
  }
  // Reopen truncated: decode must reject, not crash.
  {
    srb::SrbClient client(fabric_, "node0", "orion", 5544);
    const auto st = client.stat("/f/t");
    ASSERT_TRUE(st.has_value());
    const auto fd = client.open("/f/t", srb::kRead | srb::kWrite);
    (void)fd;
    // ObjectStore truncation via the server is not exposed; emulate by
    // reading a shortened range through a fresh handle instead.
    Bytes raw(st->size - 5);
    client.pread(fd, MutByteSpan(raw.data(), raw.size()), 0);
    EXPECT_THROW(compress::decode_frame_stream(ByteSpan(raw.data(), raw.size())),
                 compress::CodecError);
    client.close(fd);
  }
}

TEST_F(FailureTest, RankCrashAbortsJobCleanly) {
  // One rank throws mid-job while others are blocked in recv and barrier:
  // run() must rethrow the original error and not deadlock.
  EXPECT_THROW(mpi::run(4,
                        [](mpi::Comm& comm) {
                          if (comm.rank() == 1)
                            throw std::runtime_error("simulated rank crash");
                          if (comm.rank() == 0) comm.recv(1, 99);
                          comm.barrier();
                        }),
               std::runtime_error);
}

TEST_F(FailureTest, IsendToCrashedWorldSurfacesOnWait) {
  EXPECT_THROW(mpi::run(2,
                        [](mpi::Comm& comm) {
                          if (comm.rank() == 0) throw mpi::MpiError("dead");
                          // Rank 1 blocks on a receive that can never match.
                          comm.recv(0, 7);
                        }),
               mpi::MpiError);
}

TEST_F(FailureTest, DoubleCloseAndUseAfterCloseAreSafe) {
  semplar::SrbfsDriver driver(fabric_, config());
  mpiio::File f(driver, "/f/dc", mpiio::kModeRead | mpiio::kModeWrite |
                                     mpiio::kModeCreate);
  f.close();
  f.close();  // idempotent
}

}  // namespace
}  // namespace remio
