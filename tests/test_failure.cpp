// Failure-injection tests: broker death mid-operation, engine behaviour
// after task failures, corrupted compressed objects, and rank crashes —
// errors must surface on the right call and never hang or crash.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "chaos.hpp"
#include "common/rng.hpp"
#include "core/semplar.hpp"
#include "minimpi/runtime.hpp"
#include "simnet/faults.hpp"
#include "simnet/timescale.hpp"
#include "srb/server.hpp"

namespace remio {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  FailureTest() : scale_(2000.0) {
    simnet::HostSpec server_host;
    server_host.name = "orion";
    fabric_.add_host(server_host);
    simnet::HostSpec node;
    node.name = "node0";
    fabric_.add_host(node);
    server_ = std::make_unique<srb::SrbServer>(fabric_, srb::ServerConfig{});
    server_->start();
  }

  semplar::Config config(int streams = 1) {
    semplar::Config cfg;
    cfg.client_host = "node0";
    cfg.streams_per_node = streams;
    cfg.io_threads = streams;
    cfg.conn.tcp_window = 0;
    return cfg;
  }

  simnet::ScopedTimeScale scale_;
  simnet::Fabric fabric_;
  std::unique_ptr<srb::SrbServer> server_;
};

TEST_F(FailureTest, SyncWriteFailsAfterServerStop) {
  semplar::SrbfsDriver driver(fabric_, config());
  mpiio::File f(driver, "/f/a", mpiio::kModeRead | mpiio::kModeWrite |
                                    mpiio::kModeCreate);
  server_->stop();
  const Bytes data(64 * 1024, 'x');
  EXPECT_ANY_THROW(f.write_at(0, ByteSpan(data.data(), data.size())));
}

TEST_F(FailureTest, ConnectRefusedAfterServerStop) {
  server_->stop();
  EXPECT_ANY_THROW(semplar::SrbfsDriver(fabric_, config())
                       .open("/f/b", mpiio::kModeWrite | mpiio::kModeCreate));
}

TEST_F(FailureTest, AsyncErrorDeliveredOnWaitNotSubmit) {
  semplar::SrbfsDriver driver(fabric_, config());
  mpiio::File f(driver, "/f/c", mpiio::kModeRead | mpiio::kModeWrite |
                                    mpiio::kModeCreate);
  server_->stop();
  const Bytes data(64 * 1024, 'y');
  // Submission itself must not throw; the failure belongs to the request.
  mpiio::IoRequest req = f.iwrite_at(0, ByteSpan(data.data(), data.size()));
  EXPECT_ANY_THROW(req.wait());
}

TEST_F(FailureTest, EngineKeepsServingAfterFailedTask) {
  semplar::AsyncEngine engine(1, 16);
  auto bad = engine.submit([]() -> std::size_t { throw mpiio::IoError("boom"); });
  auto good = engine.submit([] { return std::size_t{11}; });
  EXPECT_THROW(bad.wait(), mpiio::IoError);
  EXPECT_EQ(good.wait(), 11u);  // the I/O thread survived the exception
}

TEST_F(FailureTest, StripedWriteOneStreamDiesOthersReport) {
  // Kill the broker mid-striped-write: the master request must fail (not
  // hang), and subsequent waits stay failed.
  semplar::Config cfg = config(2);
  cfg.stripe_size = 64 * 1024;
  semplar::SrbfsDriver driver(fabric_, cfg);
  mpiio::File f(driver, "/f/d", mpiio::kModeRead | mpiio::kModeWrite |
                                    mpiio::kModeCreate);
  Rng rng(9);
  const Bytes data = rng.bytes(1 << 20);
  server_->stop();
  mpiio::IoRequest req = f.iwrite_at(0, ByteSpan(data.data(), data.size()));
  EXPECT_ANY_THROW(req.wait());
  EXPECT_TRUE(req.test());
}

TEST_F(FailureTest, CorruptedCompressedObjectDetectedOnRead) {
  semplar::SrbfsDriver driver(fabric_, config());
  auto handle = driver.open("/f/z", mpiio::kModeRead | mpiio::kModeWrite |
                                        mpiio::kModeCreate);
  {
    semplar::CompressPipe pipe(*handle, compress::codec_by_name("lzmini"));
    const Bytes block(100 * 1024, 'c');
    pipe.write(ByteSpan(block.data(), block.size()));
    pipe.finish();
  }
  // Corrupt one byte of the stored frame payload via a direct client.
  {
    srb::SrbClient client(fabric_, "node0", "orion", 5544);
    const auto fd = client.open("/f/z", srb::kRead | srb::kWrite);
    const Bytes evil = to_bytes("X");
    client.pwrite(fd, ByteSpan(evil.data(), evil.size()), 40);
    client.close(fd);
  }
  EXPECT_THROW(semplar::read_all_decompressed(*handle), compress::CodecError);
}

TEST_F(FailureTest, TruncatedCompressedObjectDetected) {
  semplar::SrbfsDriver driver(fabric_, config());
  auto handle = driver.open("/f/t", mpiio::kModeRead | mpiio::kModeWrite |
                                        mpiio::kModeCreate);
  {
    semplar::CompressPipe pipe(*handle, compress::codec_by_name("lzmini"));
    const Bytes block(50 * 1024, 't');
    pipe.write(ByteSpan(block.data(), block.size()));
    pipe.finish();
  }
  // Reopen truncated: decode must reject, not crash.
  {
    srb::SrbClient client(fabric_, "node0", "orion", 5544);
    const auto st = client.stat("/f/t");
    ASSERT_TRUE(st.has_value());
    const auto fd = client.open("/f/t", srb::kRead | srb::kWrite);
    (void)fd;
    // ObjectStore truncation via the server is not exposed; emulate by
    // reading a shortened range through a fresh handle instead.
    Bytes raw(st->size - 5);
    client.pread(fd, MutByteSpan(raw.data(), raw.size()), 0);
    EXPECT_THROW(compress::decode_frame_stream(ByteSpan(raw.data(), raw.size())),
                 compress::CodecError);
    client.close(fd);
  }
}

TEST_F(FailureTest, RankCrashAbortsJobCleanly) {
  // One rank throws mid-job while others are blocked in recv and barrier:
  // run() must rethrow the original error and not deadlock.
  EXPECT_THROW(mpi::run(4,
                        [](mpi::Comm& comm) {
                          if (comm.rank() == 1)
                            throw std::runtime_error("simulated rank crash");
                          if (comm.rank() == 0) comm.recv(1, 99);
                          comm.barrier();
                        }),
               std::runtime_error);
}

TEST_F(FailureTest, IsendToCrashedWorldSurfacesOnWait) {
  EXPECT_THROW(mpi::run(2,
                        [](mpi::Comm& comm) {
                          if (comm.rank() == 0) throw mpi::MpiError("dead");
                          // Rank 1 blocks on a receive that can never match.
                          comm.recv(0, 7);
                        }),
               mpi::MpiError);
}

TEST_F(FailureTest, DoubleCloseAndUseAfterCloseAreSafe) {
  semplar::SrbfsDriver driver(fabric_, config());
  mpiio::File f(driver, "/f/dc", mpiio::kModeRead | mpiio::kModeWrite |
                                     mpiio::kModeCreate);
  f.close();
  f.close();  // idempotent
}

// ---------------------------------------------------------------------------
// Transport supervision: fault injection + reconnect/retry/backoff.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kRwc =
    mpiio::kModeRead | mpiio::kModeWrite | mpiio::kModeCreate;

class SupervisedFailureTest : public FailureTest {
 protected:
  SupervisedFailureTest() : faults_(std::make_shared<simnet::FaultInjector>()) {
    fabric_.set_fault_injector(faults_);
  }

  semplar::Config retry_config(int streams = 1) {
    semplar::Config cfg = config(streams);
    cfg.retry.max_attempts = 6;
    cfg.retry.backoff_base = 0.01;
    cfg.retry.backoff_cap = 0.08;
    cfg.retry.jitter = 0.25;
    return cfg;
  }

  static const semplar::SemplarFile& file_of(mpiio::File& f) {
    auto* sf = dynamic_cast<semplar::SemplarFile*>(&f.handle());
    EXPECT_NE(sf, nullptr);
    return *sf;
  }

  std::shared_ptr<simnet::FaultInjector> faults_;
};

TEST_F(SupervisedFailureTest, SyncWriteSurvivesInjectedDrop) {
  semplar::SrbfsDriver driver(fabric_, retry_config());
  mpiio::File f(driver, "/s/drop", kRwc);
  faults_->arm_kill();  // the very next send dies
  Rng rng(3);
  const Bytes data = rng.bytes(128 * 1024);
  EXPECT_EQ(f.write_at(0, ByteSpan(data.data(), data.size())), data.size());
  Bytes back(data.size());
  EXPECT_EQ(f.read_at(0, MutByteSpan(back.data(), back.size())), back.size());
  EXPECT_EQ(back, data);
  const auto snap = file_of(f).stats().snapshot();
  EXPECT_GE(snap.reconnects, 1u);
  EXPECT_GE(snap.replayed_ops, 1u);
  EXPECT_GT(snap.backoff_sim_seconds, 0.0);
  EXPECT_EQ(faults_->drops(), 1u);
  f.close();
}

TEST_F(SupervisedFailureTest, RetriesDisabledIsFailFast) {
  // Default config: retry off. An injected drop must surface immediately
  // (the paper's behaviour) and nothing may be replayed behind our back.
  semplar::SrbfsDriver driver(fabric_, config());
  mpiio::File f(driver, "/s/fastfail", kRwc);
  faults_->arm_kill();
  const Bytes data(64 * 1024, 'q');
  EXPECT_ANY_THROW(f.write_at(0, ByteSpan(data.data(), data.size())));
  const auto snap = file_of(f).stats().snapshot();
  EXPECT_EQ(snap.reconnects, 0u);
  EXPECT_EQ(snap.replayed_ops, 0u);
  EXPECT_EQ(snap.backoff_sim_seconds, 0.0);
}

TEST_F(SupervisedFailureTest, BrokerRestartMidStripeRecovers) {
  // Stop and restart the broker between two striped async writes: the
  // second one finds every connection dead, reconnects (fresh SRB login +
  // reopen), replays, and the file ends up byte-identical to the intent.
  semplar::Config cfg = retry_config(2);
  cfg.stripe_size = 64 * 1024;
  semplar::SrbfsDriver driver(fabric_, cfg);
  mpiio::File f(driver, "/s/restart", kRwc);
  Rng rng(11);
  const Bytes first = rng.bytes(512 * 1024);
  const Bytes second = rng.bytes(512 * 1024);
  mpiio::IoRequest r1 = f.iwrite_at(0, ByteSpan(first.data(), first.size()));
  EXPECT_EQ(r1.wait(), first.size());

  server_->stop();   // all sessions die; the object store survives
  server_->start();  // broker comes back on the same port

  mpiio::IoRequest r2 =
      f.iwrite_at(first.size(), ByteSpan(second.data(), second.size()));
  EXPECT_EQ(r2.wait(), second.size());

  Bytes back(first.size() + second.size());
  EXPECT_EQ(f.read_at(0, MutByteSpan(back.data(), back.size())), back.size());
  EXPECT_TRUE(std::equal(first.begin(), first.end(), back.begin()));
  EXPECT_TRUE(std::equal(second.begin(), second.end(),
                         back.begin() + static_cast<std::ptrdiff_t>(first.size())));
  const auto snap = file_of(f).stats().snapshot();
  EXPECT_GE(snap.reconnects, 2u);  // both streams re-logged-in
  f.close();
}

TEST_F(SupervisedFailureTest, BackoffFollowsCappedExponentialSchedule) {
  // jitter = 0 makes the schedule exact: delays 0.01, 0.02, 0.04, 0.08,
  // 0.08 (capped) for the five replays of a six-attempt op that never
  // succeeds. ScopedTimeScale(2000) compresses the wait to microseconds of
  // wall time while the sim clock still advances by the full amount.
  semplar::Config cfg = retry_config();
  cfg.retry.jitter = 0.0;
  semplar::SrbfsDriver driver(fabric_, cfg);
  mpiio::File f(driver, "/s/backoff", kRwc);
  faults_->arm_kill();     // first attempt dies...
  faults_->ban("node0");   // ...and every reconnect is refused
  const Bytes data(32 * 1024, 'b');
  const double t0 = simnet::sim_now();
  EXPECT_ANY_THROW(f.write_at(0, ByteSpan(data.data(), data.size())));
  const double elapsed = simnet::sim_now() - t0;
  const double expected = 0.01 + 0.02 + 0.04 + 0.08 + 0.08;
  const auto snap = file_of(f).stats().snapshot();
  EXPECT_NEAR(snap.backoff_sim_seconds, expected, 1e-9);
  EXPECT_EQ(snap.replayed_ops, 5u);
  EXPECT_GE(elapsed, expected);  // the sleeps really happened, in sim time
  EXPECT_EQ(snap.reconnects, 0u);
}

TEST_F(SupervisedFailureTest, OpDeadlineExpiresWithTaxonomy) {
  semplar::Config cfg = retry_config();
  cfg.retry.max_attempts = 100;
  cfg.retry.backoff_base = 0.5;
  cfg.retry.backoff_cap = 0.5;
  cfg.retry.jitter = 0.0;
  cfg.retry.op_deadline = 1.0;  // expires after at most two 0.5 s waits
  semplar::SrbfsDriver driver(fabric_, cfg);
  mpiio::File f(driver, "/s/deadline", kRwc);
  faults_->arm_kill();
  faults_->ban("node0");
  const Bytes data(16 * 1024, 'd');
  try {
    f.write_at(0, ByteSpan(data.data(), data.size()));
    FAIL() << "expected the op deadline to expire";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.domain(), ErrorDomain::kDeadline);
    EXPECT_FALSE(e.retryable());
  }
  EXPECT_EQ(file_of(f).stats().snapshot().deadline_expirations, 1u);
}

TEST_F(SupervisedFailureTest, DeadStreamDegradesOntoSurvivor) {
  // Stream 1 of 2 dies and can never reconnect: after the repair budget is
  // spent it is declared dead, and its striped share is transparently
  // re-routed onto stream 0. The request completes — no hang, right bytes.
  semplar::Config cfg = retry_config(2);
  cfg.stripe_size = 64 * 1024;
  semplar::SrbfsDriver driver(fabric_, cfg);
  mpiio::File f(driver, "/s/degrade", kRwc);
  faults_->ban("/s1");     // reconnects of stream 1 are refused forever
  faults_->arm_kill("/s1");  // and its next send kills the connection
  Rng rng(17);
  const Bytes data = rng.bytes(1 << 20);
  mpiio::IoRequest req = f.iwrite_at(0, ByteSpan(data.data(), data.size()));
  EXPECT_EQ(req.wait(), data.size());
  Bytes back(data.size());
  EXPECT_EQ(f.read_at(0, MutByteSpan(back.data(), back.size())), back.size());
  EXPECT_EQ(back, data);
  auto* sf = dynamic_cast<semplar::SemplarFile*>(&f.handle());
  ASSERT_NE(sf, nullptr);
  EXPECT_EQ(sf->streams().alive_count(), 1);
  EXPECT_EQ(sf->streams().count(), 2);
  f.close();
}

TEST_F(SupervisedFailureTest, ReplayedRunMatchesFaultFreeRunByteForByte) {
  // Idempotence property: the same randomized workload produces the
  // intended object with and without a 1.5% per-send drop probability,
  // because every replayed op is offset-addressed and re-run from scratch.
  struct Op {
    std::uint64_t off;
    Bytes chunk;
    bool async;
    bool wait_here;  // join all pending requests after this op
  };
  std::vector<Op> ops;
  std::uint64_t high = 0;
  {
    Rng rng(23);
    for (int i = 0; i < 24; ++i) {
      // One disjoint 64 KiB slot per op: concurrent in-flight writes never
      // overlap, so the final object is deterministic regardless of which
      // replays happen (only overlap order would be racy, not replays).
      const std::uint64_t slot = static_cast<std::uint64_t>(i) * (64 * 1024);
      Op op;
      op.off = slot + rng.below(8 * 1024);
      op.chunk = rng.bytes(1024 + static_cast<std::size_t>(rng.below(48 * 1024)));
      op.async = rng.chance(0.5);
      op.wait_here = rng.chance(0.4);
      high = std::max(high, op.off + op.chunk.size());
      ops.push_back(std::move(op));
    }
  }
  Bytes expected(high, 0);  // unwritten gaps read back as zeros
  for (const Op& op : ops)
    std::copy(op.chunk.begin(), op.chunk.end(),
              expected.begin() + static_cast<std::ptrdiff_t>(op.off));

  const auto run = [&](const std::string& path, bool faulty) {
    semplar::Config cfg = retry_config(2);
    cfg.retry.max_attempts = 10;
    semplar::SrbfsDriver driver(fabric_, cfg);
    mpiio::File f(driver, path, kRwc);
    if (faulty) {
      faults_->seed(0xfee1u);
      faults_->set_drop_probability(0.015);
    }
    std::vector<mpiio::IoRequest> pending;
    for (const Op& op : ops) {
      if (op.async) {
        pending.push_back(
            f.iwrite_at(op.off, ByteSpan(op.chunk.data(), op.chunk.size())));
      } else {
        EXPECT_EQ(f.write_at(op.off, ByteSpan(op.chunk.data(), op.chunk.size())),
                  op.chunk.size());
      }
      if (op.wait_here) {
        for (auto& r : pending) r.wait();
        pending.clear();
      }
    }
    for (auto& r : pending) r.wait();
    f.close();
    faults_->set_drop_probability(0.0);
    // Verify through a fresh fail-fast handle: supervision must have left a
    // fully consistent object behind, not merely masked the damage.
    semplar::SrbfsDriver check(fabric_, config());
    mpiio::File g(check, path, mpiio::kModeRead);
    Bytes content(high);
    EXPECT_EQ(g.read_at(0, MutByteSpan(content.data(), content.size())),
              content.size());
    g.close();
    return content;
  };

  const Bytes reference = run("/s/ref", /*faulty=*/false);
  EXPECT_EQ(reference, expected);  // sanity: the fault-free run is intact
  const Bytes replayed = run("/s/faulty", /*faulty=*/true);
  EXPECT_GT(faults_->drops(), 0u);  // the faulty run really was faulty
  EXPECT_EQ(replayed, expected);
}

TEST_F(SupervisedFailureTest, LatencySpikesSlowButNeverFail) {
  semplar::SrbfsDriver driver(fabric_, config());  // no retries needed
  mpiio::File f(driver, "/s/spike", kRwc);
  faults_->set_latency_spike(1.0, 0.002);  // every send stalls 2 sim-ms
  const Bytes data(64 * 1024, 's');
  EXPECT_EQ(f.write_at(0, ByteSpan(data.data(), data.size())), data.size());
  EXPECT_GT(faults_->latency_spikes(), 0u);
  EXPECT_EQ(faults_->drops(), 0u);
  f.close();
}

TEST_F(SupervisedFailureTest, WaitStatusReportsTaxonomyWithoutThrowing) {
  semplar::SrbfsDriver driver(fabric_, config());
  mpiio::File f(driver, "/s/status", kRwc);
  server_->stop();
  const Bytes data(64 * 1024, 'w');
  mpiio::IoRequest req = f.iwrite_at(0, ByteSpan(data.data(), data.size()));
  const Status st = req.wait_status();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.domain(), ErrorDomain::kTransport);
  EXPECT_TRUE(st.retryable());  // a dead connection is transient by contract
  EXPECT_FALSE(req.error().ok());  // error() agrees after completion
  EXPECT_TRUE(req.test());
}

TEST_F(SupervisedFailureTest, EngineReplayDoesNotStallUnrelatedTasks) {
  // One supervised task keeps failing retryably and waits out long backoffs;
  // tasks submitted after it must still complete promptly because workers
  // never sleep on a backoff — the deferred heap does the waiting.
  semplar::Config::Retry retry;
  retry.max_attempts = 4;
  // 60 sim seconds per backoff (30 ms wall at the fixture's 2000x scale):
  // enormous next to a healthy task, small next to the test budget.
  retry.backoff_base = 60.0;
  retry.backoff_cap = 60.0;
  retry.jitter = 0.0;
  semplar::AsyncEngine engine(1, 16, nullptr, retry);
  std::atomic<int> failures{0};
  mpiio::IoRequest doomed = engine.submit_supervised([&]() -> std::size_t {
    ++failures;
    throw mpiio::IoError({ErrorDomain::kTransport, 0, /*retryable=*/true, "t"},
                         "flaky");
  });
  const double t0 = simnet::sim_now();
  mpiio::IoRequest healthy = engine.submit([] { return std::size_t{7}; });
  EXPECT_EQ(healthy.wait(), 7u);
  // The healthy task finished while the doomed one was still backing off.
  EXPECT_LT(simnet::sim_now() - t0, 60.0);
  EXPECT_LT(failures.load(), 4);
  EXPECT_FALSE(doomed.wait_status().ok());  // eventually exhausts attempts
  EXPECT_EQ(failures.load(), 4);
  engine.shutdown();
}

TEST_F(SupervisedFailureTest, ShutdownFailsParkedReplaysInsteadOfWaiting) {
  semplar::Config::Retry retry;
  retry.max_attempts = 10;
  retry.backoff_base = 3600.0;  // absurd: shutdown must not wait this out
  retry.backoff_cap = 3600.0;
  retry.jitter = 0.0;
  semplar::AsyncEngine engine(1, 16, nullptr, retry);
  mpiio::IoRequest doomed = engine.submit_supervised([]() -> std::size_t {
    throw mpiio::IoError({ErrorDomain::kTransport, 0, /*retryable=*/true, "t"},
                         "flaky");
  });
  // Give the worker a moment to run the task and park the replay; shutdown
  // is correct in every interleaving, but this exercises the parked path.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  engine.shutdown();  // must return promptly and fail the parked replay
  EXPECT_FALSE(doomed.wait_status().ok());
}

// ---------------------------------------------------------------------------
// Supervision x corruption matrix. In-flight bit flips (both directions —
// the server socket corrupts responses too) land on CRC-checked frames, so
// every one must surface as a typed integrity error; with retries on the
// supervisor replays it on the SAME stream (integrity never demotes a
// connection) and the final bytes match the intent exactly.
// ---------------------------------------------------------------------------

TEST_F(SupervisedFailureTest, RandomizedCorruptionIsNeverSilent) {
  // Property test: a randomized workload under an ambient per-frame corrupt
  // probability must end byte-identical to the flat model. Detection is the
  // only acceptable fate for a flipped frame — wrong data landing (write) or
  // being returned (read) would show up in the verify pass.
  struct Slot {
    std::uint64_t off;
    Bytes chunk;
    bool async;
  };
  std::vector<Slot> slots;
  std::uint64_t high = 0;
  Rng rng(29);
  for (int i = 0; i < 28; ++i) {
    Slot s;
    s.off = static_cast<std::uint64_t>(i) * (32 * 1024) + rng.below(4 * 1024);
    s.chunk = rng.bytes(1024 + static_cast<std::size_t>(rng.below(20 * 1024)));
    s.async = rng.chance(0.5);
    high = std::max(high, s.off + s.chunk.size());
    slots.push_back(std::move(s));
  }
  Bytes expected(high, 0);
  for (const Slot& s : slots)
    std::copy(s.chunk.begin(), s.chunk.end(),
              expected.begin() + static_cast<std::ptrdiff_t>(s.off));

  semplar::Config cfg = retry_config(2);
  cfg.retry.max_attempts = 10;
  semplar::SrbfsDriver driver(fabric_, cfg);
  mpiio::File f(driver, "/x/corrupt", kRwc);
  // Arm corruption only after connect: the handshake is unchecksummed by
  // design, and integrity errors never trigger reconnects, so from here on
  // every frame either side sends is covered by a CRC trailer.
  faults_->seed(0x0c0ffee5u);
  faults_->set_corrupt_probability(std::max(0.02, chaos_corrupt_rate()),
                                   "semplar/");
  std::vector<mpiio::IoRequest> pending;
  for (const Slot& s : slots) {
    if (s.async) {
      pending.push_back(f.iwrite_at(s.off, ByteSpan(s.chunk.data(), s.chunk.size())));
    } else {
      EXPECT_EQ(f.write_at(s.off, ByteSpan(s.chunk.data(), s.chunk.size())),
                s.chunk.size());
    }
  }
  for (auto& r : pending) r.wait();
  // Read back through the same supervised handle with corruption still on:
  // flipped *responses* must be retried just like flipped requests.
  Bytes back(high);
  EXPECT_EQ(f.read_at(0, MutByteSpan(back.data(), back.size())), back.size());
  EXPECT_EQ(back, expected);

  const auto snap = file_of(f).stats().snapshot();
  EXPECT_GT(faults_->corruptions(), 0u);  // the run really was corrupted
  EXPECT_GE(snap.corruptions_detected, 1u);
  EXPECT_GE(snap.integrity_retries, 1u);
  EXPECT_EQ(snap.reconnects, 0u);  // integrity errors stay on their stream
  faults_->set_corrupt_probability(0.0);
  f.close();

  // Belt and braces: a fresh fail-fast handle sees the same bytes, so
  // supervision left a consistent object, not a masked one.
  semplar::SrbfsDriver check(fabric_, config());
  mpiio::File g(check, "/x/corrupt", mpiio::kModeRead);
  Bytes content(high);
  EXPECT_EQ(g.read_at(0, MutByteSpan(content.data(), content.size())),
            content.size());
  EXPECT_EQ(content, expected);
  g.close();
}

TEST_F(SupervisedFailureTest, RetriesOffCorruptionFailsFastWithTaxonomy) {
  semplar::SrbfsDriver driver(fabric_, config());  // retries disabled
  mpiio::File f(driver, "/x/fastfail", kRwc);
  faults_->set_corrupt_probability(1.0, "semplar/");
  const Bytes data(32 * 1024, 'c');
  try {
    f.write_at(0, ByteSpan(data.data(), data.size()));
    FAIL() << "expected a checksum mismatch to surface";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.domain(), ErrorDomain::kIntegrity);
    EXPECT_TRUE(e.retryable());  // typed so a supervisor COULD retry it
  }
  const auto snap = file_of(f).stats().snapshot();
  EXPECT_GE(snap.corruptions_detected, 1u);
  EXPECT_EQ(snap.integrity_retries, 0u);
  EXPECT_EQ(snap.replayed_ops, 0u);
  EXPECT_EQ(snap.reconnects, 0u);

  // The detection left framing in phase: the same session serves cleanly
  // the moment the interference stops.
  faults_->set_corrupt_probability(0.0);
  EXPECT_EQ(f.write_at(0, ByteSpan(data.data(), data.size())), data.size());
  Bytes back(data.size());
  EXPECT_EQ(f.read_at(0, MutByteSpan(back.data(), back.size())), back.size());
  EXPECT_EQ(back, data);
  f.close();
}

TEST_F(SupervisedFailureTest, DropsAndCorruptionTogetherStillConverge) {
  // The full matrix cell: transport faults (drop + reconnect + replay) and
  // integrity faults (detect + in-place retry) interleaving on one handle.
  semplar::Config cfg = retry_config(2);
  cfg.retry.max_attempts = 12;
  cfg.stripe_size = 64 * 1024;  // many frames: both fault kinds get to fire
  semplar::SrbfsDriver driver(fabric_, cfg);
  mpiio::File f(driver, "/x/matrix", kRwc);
  Rng rng(31);
  const Bytes data = rng.bytes(768 * 1024);
  faults_->seed(0xdeadbea7u);
  faults_->set_drop_probability(0.02);
  faults_->set_corrupt_probability(0.05, "semplar/");
  // Loop passes until both fault kinds have demonstrably fired (the draw
  // order depends on I/O thread interleaving, so a fixed pass count would
  // be flaky); the cap keeps a pathological run bounded.
  Bytes back(data.size());
  for (int pass = 0; pass < 10; ++pass) {
    mpiio::IoRequest req = f.iwrite_at(0, ByteSpan(data.data(), data.size()));
    EXPECT_EQ(req.wait(), data.size());
    std::fill(back.begin(), back.end(), 0);
    EXPECT_EQ(f.read_at(0, MutByteSpan(back.data(), back.size())), back.size());
    EXPECT_EQ(back, data);
    if (pass >= 1 && faults_->drops() > 0 && faults_->corruptions() > 0) break;
  }
  EXPECT_GT(faults_->drops(), 0u);
  EXPECT_GT(faults_->corruptions(), 0u);
  faults_->set_drop_probability(0.0);
  faults_->set_corrupt_probability(0.0);
  f.close();
}

// ---------------------------------------------------------------------------
// Config::Retry validation — one check per invariant.
// ---------------------------------------------------------------------------

TEST(RetryConfigValidation, EveryInvariantHasAMessage) {
  const auto expect_invalid = [](auto mutate) {
    semplar::Config cfg;
    cfg.client_host = "node0";
    mutate(cfg);
    EXPECT_THROW(semplar::validate(cfg), std::invalid_argument);
  };
  expect_invalid([](semplar::Config& c) { c.retry.max_attempts = -1; });
  expect_invalid([](semplar::Config& c) { c.retry.max_attempts = 1001; });
  expect_invalid([](semplar::Config& c) { c.retry.backoff_base = -0.01; });
  expect_invalid([](semplar::Config& c) {
    c.retry.backoff_base = 1.0;
    c.retry.backoff_cap = 0.5;
  });
  expect_invalid([](semplar::Config& c) { c.retry.jitter = 1.0; });
  expect_invalid([](semplar::Config& c) { c.retry.jitter = -0.1; });
  expect_invalid([](semplar::Config& c) { c.retry.op_deadline = -1.0; });
  expect_invalid([](semplar::Config& c) { c.conn.quantum = 0; });
  expect_invalid([](semplar::Config& c) { c.conn.buffer_bytes = 0; });

  semplar::Config ok;
  ok.client_host = "node0";
  ok.retry.max_attempts = 5;
  ok.retry.op_deadline = 2.0;
  EXPECT_NO_THROW(semplar::validate(ok));
  EXPECT_TRUE(ok.retry.enabled());
  EXPECT_FALSE(semplar::Config{}.retry.enabled());  // off by default
}

TEST(BackoffSchedule, DeterministicCappedAndJittered) {
  semplar::Config::Retry retry;
  retry.max_attempts = 8;
  retry.backoff_base = 0.05;
  retry.backoff_cap = 2.0;
  retry.jitter = 0.5;
  semplar::Backoff a(retry, 42);
  semplar::Backoff b(retry, 42);
  for (int k = 0; k < 16; ++k) {
    const double d = a.delay(k);
    EXPECT_EQ(d, b.delay(k));  // same seed, same schedule
    const double full = std::min(retry.backoff_cap, 0.05 * std::ldexp(1.0, k));
    EXPECT_LE(d, full);
    EXPECT_GE(d, full * (1.0 - retry.jitter) - 1e-12);
  }
  retry.jitter = 0.0;
  semplar::Backoff exact(retry, 7);
  EXPECT_DOUBLE_EQ(exact.delay(0), 0.05);
  EXPECT_DOUBLE_EQ(exact.delay(3), 0.4);
  EXPECT_DOUBLE_EQ(exact.delay(10), 2.0);  // capped
}

TEST(ErrorTaxonomy, StatusFromExceptionClassifies) {
  const auto classify = [](auto&& make) {
    try {
      make();
    } catch (...) {
      return status_from_exception(std::current_exception());
    }
    return Status();
  };
  Status s = classify([] {
    throw simnet::NetError("link dropped");
  });
  EXPECT_EQ(s.domain(), ErrorDomain::kTransport);
  EXPECT_TRUE(s.retryable());

  s = classify([] { throw srb::SrbError(srb::Status::kNotFound, "missing"); });
  EXPECT_EQ(s.domain(), ErrorDomain::kBroker);
  EXPECT_FALSE(s.retryable());
  EXPECT_EQ(s.code(), static_cast<std::int32_t>(srb::Status::kNotFound));

  s = classify([] { throw std::runtime_error("plain"); });
  EXPECT_EQ(s.domain(), ErrorDomain::kGeneric);
  EXPECT_FALSE(s.retryable());

  EXPECT_TRUE(status_from_exception(nullptr).ok());
  EXPECT_TRUE(Status().ok());
  const Status fail = Status::failure(
      {ErrorDomain::kDeadline, 0, false, "op"}, "too slow");
  EXPECT_FALSE(fail.ok());
  EXPECT_NE(fail.to_string().find("deadline"), std::string::npos);
}

}  // namespace
}  // namespace remio
