// Integration tests over the shared workloads: each §7 experiment's
// qualitative claim is asserted at small scale — async beats sync, two
// streams beat one, compression raises app-perceived write bandwidth, and
// the counter-intuitive bus-contention result reproduces.
#include <gtest/gtest.h>

#include "simnet/timescale.hpp"
#include "testbed/workloads.hpp"

namespace remio::testbed {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  // Moderate scale: runs stay in the tens of milliseconds of wall time but
  // the effects under test stay well above sleep-granularity noise.
  WorkloadTest() : scale_(300.0) {}
  simnet::ScopedTimeScale scale_;
};

LaplaceParams small_laplace() {
  LaplaceParams p;
  p.checkpoint_bytes = 2u << 20;
  p.checkpoints = 2;
  p.iters_per_checkpoint = 3;
  p.compute_total = 1.2;
  p.halo_bytes = 8 * 1024;
  return p;
}

TEST_F(WorkloadTest, LaplaceSyncRunsAndAccounts) {
  Testbed tb(tg_ncsa(), 2);
  const auto r = run_laplace(tb, 2, small_laplace());
  EXPECT_GT(r.exec, 0.0);
  EXPECT_GT(r.io_phase, 0.0);
  EXPECT_GT(r.compute_phase, 0.0);
  EXPECT_EQ(r.bytes_written, (2u << 20) * 2);
  // Checkpoints land in the store.
  EXPECT_GE(tb.server().store().total_bytes(), 2u << 20);
  // Sync exec ~ compute + io; expected overlap is the max of the phases.
  EXPECT_NEAR(r.exec, r.compute_phase + r.io_phase, r.exec * 0.35);
  EXPECT_LE(r.expected_overlap, r.compute_phase + r.io_phase);
}

TEST_F(WorkloadTest, LaplaceAsyncBeatsSync) {
  LaplaceParams p = small_laplace();
  p.compute_total = 4.0;  // balanced phases -> a robust overlap gain
  // Best of two runs per mode: scheduler stalls only ever slow a run down.
  auto best = [&](bool async) {
    double b = 1e100;
    for (int rep = 0; rep < 2; ++rep) {
      Testbed tb(das2(), 2);
      LaplaceParams q = p;
      q.async = async;
      b = std::min(b, run_laplace(tb, 2, q).exec);
    }
    return b;
  };
  EXPECT_LT(best(true), best(false));
}

// Span-derived version of the AsyncBeatsSync claim: the achieved-overlap
// fraction comes from sim-time busy intervals, so it is immune to the
// scheduler jitter that makes wall-clock exec comparisons flaky. Async
// overlaps compute with the wire; sync by construction cannot.
TEST_F(WorkloadTest, LaplaceSpanOverlapAsyncExceedsSync) {
  LaplaceParams p = small_laplace();
  p.compute_total = 4.0;
  auto achieved = [&](bool async) {
    Testbed tb(das2(), 2);
    LaplaceParams q = p;
    q.async = async;
    return run_laplace(tb, 2, q).span_overlap_achieved;
  };
  const double sync_a = achieved(false);
  const double async_a = achieved(true);
  EXPECT_GT(sync_a, 0.0);
  EXPECT_LE(async_a, 1.0);
  // Async must recover a clear majority of the serial time; sync sits near
  // max(C,I)/(C+I). The gap is structural, not a timing race.
  EXPECT_GT(async_a, sync_a + 0.05);
  EXPECT_GT(async_a, 0.5);
}

TEST_F(WorkloadTest, LaplaceSpansAreWellFormedAndCoverBothPhases) {
  LaplaceParams p = small_laplace();
  p.async = true;
  Testbed tb(das2(), 2);
  const auto r = run_laplace(tb, 2, p);
  ASSERT_FALSE(r.spans.empty());
  bool saw_compute = false;
  bool saw_wire = false;
  for (const auto& s : r.spans) {
    EXPECT_TRUE(obs::well_formed(s));
    saw_compute = saw_compute || s.kind == obs::SpanKind::kCompute;
    saw_wire = saw_wire || s.kind == obs::SpanKind::kWire;
  }
  EXPECT_TRUE(saw_compute);
  EXPECT_TRUE(saw_wire);
  EXPECT_GT(r.span_compute_busy, 0.0);
  EXPECT_GT(r.span_io_busy, 0.0);
}

TEST_F(WorkloadTest, LaplaceTwoStreamsBeatAsyncOnDas2) {
  LaplaceParams p = small_laplace();
  p.async = true;
  double one_stream;
  double two_streams;
  {
    Testbed tb(das2(), 2);
    one_stream = run_laplace(tb, 2, p).exec;
  }
  {
    Testbed tb(das2(), 2);
    p.streams = 2;
    two_streams = run_laplace(tb, 2, p).exec;
  }
  EXPECT_LT(two_streams, one_stream);
}

TEST_F(WorkloadTest, LaplaceScalesDownWithProcs) {
  const LaplaceParams p = small_laplace();
  auto best = [&](int procs) {
    double b = 1e100;
    for (int rep = 0; rep < 2; ++rep) {
      Testbed tb(tg_ncsa(), 4);
      b = std::min(b, run_laplace(tb, procs, p).exec);
    }
    return b;
  };
  EXPECT_LT(best(4), best(2));
}

TEST_F(WorkloadTest, LaplaceRejectsBadProcs) {
  Testbed tb(tg_ncsa(), 2);
  EXPECT_THROW(run_laplace(tb, 3, small_laplace()), std::invalid_argument);
}

BlastParams small_blast() {
  BlastParams p;
  p.queries = 12;
  p.report_bytes = 32 * 1024;
  p.compute_per_query = 0.3;
  return p;
}

TEST_F(WorkloadTest, BlastAsyncBeatsSync) {
  const BlastParams p = small_blast();
  double sync_time;
  double async_time;
  {
    Testbed tb(das2(), 4);
    sync_time = run_mpi_blast(tb, 4, p).exec;
  }
  {
    Testbed tb(das2(), 4);
    BlastParams ap = p;
    ap.async = true;
    async_time = run_mpi_blast(tb, 4, ap).exec;
  }
  EXPECT_LT(async_time, sync_time);
}

TEST_F(WorkloadTest, BlastWritesAllReports) {
  Testbed tb(tg_ncsa(), 3);
  const auto r = run_mpi_blast(tb, 3, small_blast());
  EXPECT_EQ(r.bytes_written, 12u * 32u * 1024u);
  // Each worker wrote its own independent file.
  EXPECT_EQ(tb.server().mcat().object_count(), 2u);
  EXPECT_EQ(tb.server().store().total_bytes(), r.bytes_written);
}

TEST_F(WorkloadTest, BlastMoreWorkersFinishFaster) {
  const BlastParams p = small_blast();
  double few;
  double many;
  {
    Testbed tb(tg_ncsa(), 5);
    few = run_mpi_blast(tb, 2, p).exec;
  }
  {
    Testbed tb(tg_ncsa(), 5);
    many = run_mpi_blast(tb, 5, p).exec;
  }
  EXPECT_LT(many, few);
}

TEST_F(WorkloadTest, BlastNeedsMaster) {
  Testbed tb(tg_ncsa(), 2);
  EXPECT_THROW(run_mpi_blast(tb, 1, small_blast()), std::invalid_argument);
}

TEST_F(WorkloadTest, PerfTwoStreamsRaiseBandwidth) {
  PerfParams p;
  p.array_bytes = 2u << 20;  // long transfers: jitter-immune comparison
  auto best_bw = [&](int streams) {
    double best = 0.0;
    for (int rep = 0; rep < 2; ++rep) {
      Testbed tb(das2(), 2);
      PerfParams q = p;
      q.streams = streams;
      best = std::max(best, run_perf(tb, 2, q).write_bw);
    }
    return best;
  };
  const double bw1 = best_bw(1);
  const double bw2 = best_bw(2);
  EXPECT_GT(bw1, 0.0);
  EXPECT_GT(bw2, bw1 * 1.3);
}

TEST_F(WorkloadTest, PerfVerifiesReadback) {
  Testbed tb(tg_ncsa(), 3);
  PerfParams p;
  p.array_bytes = 256 * 1024;
  p.streams = 2;
  p.verify = true;  // throws on corruption
  const auto r = run_perf(tb, 3, p);
  EXPECT_GT(r.write_bw, 0.0);
  EXPECT_GT(r.read_bw, 0.0);
}

TEST_F(WorkloadTest, CompressionRaisesAppBandwidth) {
  // Compression runs real codec CPU work, which the global clock maps at
  // wall x scale: a small scale keeps Tcomp << Txmit, the §7.3 premise.
  simnet::ScopedTimeScale comp_scale(40.0);
  CompressParams p;
  p.data_bytes = 1u << 20;
  p.block_bytes = 256 * 1024;
  double plain;
  double compressed;
  {
    Testbed tb(das2(), 2);
    plain = run_compress(tb, 2, p).agg_write_bw;
  }
  {
    Testbed tb(das2(), 2);
    p.async_compressed = true;
    const auto r = run_compress(tb, 2, p);
    compressed = r.agg_write_bw;
    EXPECT_GT(r.compression_ratio, 1.4);
  }
  EXPECT_GT(compressed, plain * 1.3);
}

TEST_F(WorkloadTest, CompressionRoundTripVerifies) {
  simnet::ScopedTimeScale comp_scale(40.0);
  Testbed tb(tg_ncsa(), 1);
  CompressParams p;
  p.data_bytes = 512 * 1024;
  p.block_bytes = 128 * 1024;
  p.async_compressed = true;
  p.verify = true;  // throws on mismatch
  const auto r = run_compress(tb, 1, p);
  EXPECT_GT(r.agg_write_bw, 0.0);
}

TEST_F(WorkloadTest, ContentionErasesSecondStreamGain) {
  // §7.1's counter-intuitive result: with remote I/O overlapping the MPI
  // communication on a narrow node bus, the second connection buys nothing;
  // moving the wait (position 2) restores it.
  // Longer wall times for this timing-sensitive comparison.
  simnet::ScopedTimeScale fine_scale(150.0);
  ClusterSpec c = das2();
  c.node_bus_rate = 1.2e6;  // narrow bus: MPI halos contend with the WAN NIC
  // Deep collapse while both NICs arbitrate (TCP starvation regime): while
  // remote I/O overlaps MPI traffic, the bus delivers a fraction of its
  // rate, so extra TCP streams cannot help (§7.1).
  c.bus_contention_penalty = 0.2;
  LaplaceParams p = small_laplace();
  p.checkpoint_bytes = 4u << 20;  // I/O-heavy, so streams matter uncontended
  p.checkpoints = 2;
  p.halo_bytes = 512 * 1024;  // comm-heavy compute phase (paper's situation)
  p.iters_per_checkpoint = 4;
  p.async = true;

  // Best of two runs per configuration: thread-scheduling jitter on a
  // single-core host is one-sided (delays only), so min is the estimator.
  auto timed = [&](int streams, WaitPlacement wait) {
    double best = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      Testbed tb(c, 2);
      LaplaceParams q = p;
      q.streams = streams;
      q.wait = wait;
      best = std::min(best, run_laplace(tb, 2, q).exec);
    }
    return best;
  };

  const double overlap_1s = timed(1, WaitPlacement::kBeforeNextWrite);
  const double overlap_2s = timed(2, WaitPlacement::kBeforeNextWrite);
  const double nooverlap_2s = timed(2, WaitPlacement::kBeforeComm);

  // Two streams under contention: no meaningful gain over one stream.
  EXPECT_GT(overlap_2s, overlap_1s * 0.75);
  // Restructured code (wait moved): the two-stream gain comes back.
  EXPECT_LT(nooverlap_2s, overlap_2s * 0.97);
}

}  // namespace
}  // namespace remio::testbed
