// Property suite: however a transfer is decomposed — any stream count,
// stripe size (explicit or auto), I/O-thread count, sync or async, single
// or double open — the bytes that land in the remote object are identical
// to a reference single-stream synchronous write, and reads recover them
// exactly. Verified by content hash against the broker's stored object.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "core/semplar.hpp"
#include "simnet/timescale.hpp"
#include "srb/server.hpp"

namespace remio::semplar {
namespace {

struct StripingCase {
  int streams;
  int io_threads;
  std::size_t stripe;  // 0 = auto
  bool async;
  std::size_t size;
};

std::string case_name(const ::testing::TestParamInfo<StripingCase>& info) {
  const auto& c = info.param;
  return "s" + std::to_string(c.streams) + "_t" + std::to_string(c.io_threads) +
         "_stripe" + std::to_string(c.stripe) + (c.async ? "_async" : "_sync") +
         "_n" + std::to_string(c.size);
}

class StripingProperty : public ::testing::TestWithParam<StripingCase> {
 protected:
  StripingProperty() : scale_(5000.0) {
    simnet::HostSpec server_host;
    server_host.name = "orion";
    fabric_.add_host(server_host);
    simnet::HostSpec node;
    node.name = "node0";
    fabric_.add_host(node);
    server_ = std::make_unique<srb::SrbServer>(fabric_, srb::ServerConfig{});
    server_->start();
  }

  std::uint64_t object_hash(const std::string& path) {
    srb::SrbClient client(fabric_, "node0", "orion", 5544);
    const auto st = client.stat(path);
    if (!st) return 0;
    Bytes raw(st->size);
    const auto fd = client.open(path, srb::kRead);
    EXPECT_EQ(client.pread(fd, MutByteSpan(raw.data(), raw.size()), 0), raw.size());
    client.close(fd);
    return fnv1a(ByteSpan(raw.data(), raw.size()));
  }

  simnet::ScopedTimeScale scale_;
  simnet::Fabric fabric_;
  std::unique_ptr<srb::SrbServer> server_;
};

TEST_P(StripingProperty, AnyDecompositionSameObject) {
  const StripingCase c = GetParam();
  Rng rng(c.size * 7 + static_cast<std::uint64_t>(c.streams));
  const Bytes data = rng.bytes(c.size);

  // Reference: single-stream synchronous write.
  Config ref_cfg;
  ref_cfg.client_host = "node0";
  ref_cfg.conn.tcp_window = 0;
  {
    SemplarFile ref(fabric_, ref_cfg, "/prop/ref",
                    mpiio::kModeWrite | mpiio::kModeCreate | mpiio::kModeTrunc);
    ref.write_at(0, ByteSpan(data.data(), data.size()));
  }

  // Candidate decomposition.
  Config cfg = ref_cfg;
  cfg.streams_per_node = c.streams;
  cfg.io_threads = c.io_threads;
  cfg.stripe_size = c.stripe;
  {
    SemplarFile f(fabric_, cfg, "/prop/cand",
                  mpiio::kModeRead | mpiio::kModeWrite | mpiio::kModeCreate |
                      mpiio::kModeTrunc);
    if (c.async) {
      mpiio::IoRequest req = f.iwrite_at(0, ByteSpan(data.data(), data.size()));
      ASSERT_EQ(req.wait(), data.size());
    } else {
      ASSERT_EQ(f.write_at(0, ByteSpan(data.data(), data.size())), data.size());
    }
    // Read back through the same decomposition too.
    Bytes round(c.size);
    if (!round.empty()) {
      mpiio::IoRequest r = f.iread_at(0, MutByteSpan(round.data(), round.size()));
      ASSERT_EQ(r.wait(), data.size());
      EXPECT_EQ(round, data);
    }
  }

  EXPECT_EQ(object_hash("/prop/cand"), object_hash("/prop/ref"));
}

INSTANTIATE_TEST_SUITE_P(
    Decompositions, StripingProperty,
    ::testing::Values(
        StripingCase{1, 1, 0, true, 1},
        StripingCase{2, 2, 0, true, 100 * 1024 + 1},
        StripingCase{2, 2, 64 * 1024, true, 100 * 1024 + 1},
        StripingCase{2, 1, 32 * 1024, true, 300 * 1024},
        StripingCase{3, 3, 0, true, 257 * 1024},
        StripingCase{3, 2, 48 * 1024, true, 500 * 1024 + 13},
        StripingCase{4, 4, 0, true, 1 << 20},
        StripingCase{4, 4, 16 * 1024, true, 200 * 1024},
        StripingCase{2, 2, 0, false, 128 * 1024},
        StripingCase{1, 1, 8 * 1024, true, 64 * 1024},
        StripingCase{4, 2, 0, true, 3},
        StripingCase{2, 2, 0, true, 0}),
    case_name);

// Double-open decomposition (the paper's §7.2 trick) writes the same
// object content as one handle with two streams.
TEST(StripingDoubleOpen, MatchesLibraryStriping) {
  simnet::ScopedTimeScale scale(5000.0);
  simnet::Fabric fabric;
  simnet::HostSpec server_host;
  server_host.name = "orion";
  fabric.add_host(server_host);
  simnet::HostSpec node;
  node.name = "node0";
  fabric.add_host(node);
  srb::SrbServer server(fabric, srb::ServerConfig{});
  server.start();

  Rng rng(77);
  const Bytes data = rng.bytes(400 * 1024);
  const std::size_t half = data.size() / 2;

  Config cfg;
  cfg.client_host = "node0";
  cfg.conn.tcp_window = 0;

  // Library-level striping.
  Config lib_cfg = cfg;
  lib_cfg.streams_per_node = 2;
  lib_cfg.io_threads = 2;
  {
    SemplarFile f(fabric, lib_cfg, "/dbl/lib",
                  mpiio::kModeWrite | mpiio::kModeCreate | mpiio::kModeTrunc);
    f.iwrite_at(0, ByteSpan(data.data(), data.size())).wait();
  }

  // Application-level double open (two handles, one connection each).
  {
    SemplarFile f1(fabric, cfg, "/dbl/app",
                   mpiio::kModeWrite | mpiio::kModeCreate | mpiio::kModeTrunc);
    SemplarFile f2(fabric, cfg, "/dbl/app", mpiio::kModeWrite);
    mpiio::IoRequest r1 = f1.iwrite_at(0, ByteSpan(data.data(), half));
    mpiio::IoRequest r2 = f2.iwrite_at(half, ByteSpan(data.data() + half,
                                                      data.size() - half));
    r1.wait();
    r2.wait();
  }

  srb::SrbClient client(fabric, "node0", "orion", 5544);
  auto hash_of = [&](const std::string& path) {
    const auto st = client.stat(path);
    Bytes raw(st->size);
    const auto fd = client.open(path, srb::kRead);
    client.pread(fd, MutByteSpan(raw.data(), raw.size()), 0);
    client.close(fd);
    return fnv1a(ByteSpan(raw.data(), raw.size()));
  };
  EXPECT_EQ(hash_of("/dbl/lib"), hash_of("/dbl/app"));
}

}  // namespace
}  // namespace remio::semplar
