// End-to-end broker tests: server + client over the shaped fabric —
// open/read/write/seek semantics, catalog verbs, concurrency, and the
// object store's pread/pwrite behaviour.
#include <gtest/gtest.h>

#include <future>

#include "common/rng.hpp"
#include "simnet/faults.hpp"
#include "simnet/timescale.hpp"
#include "srb/client.hpp"
#include "srb/object_store.hpp"
#include "srb/server.hpp"

namespace remio::srb {
namespace {

class SrbTest : public ::testing::Test {
 protected:
  SrbTest() : scale_(2000.0) {
    simnet::HostSpec server_host;
    server_host.name = "orion";
    fabric_.add_host(server_host);
    simnet::HostSpec client_host;
    client_host.name = "node0";
    client_host.latency_to_core = 0.001;
    fabric_.add_host(client_host);

    server_ = std::make_unique<SrbServer>(fabric_, ServerConfig{});
    server_->start();
  }

  std::unique_ptr<SrbClient> make_client() {
    return std::make_unique<SrbClient>(fabric_, "node0", "orion", 5544);
  }

  simnet::ScopedTimeScale scale_;
  simnet::Fabric fabric_;
  std::unique_ptr<SrbServer> server_;
};

TEST_F(SrbTest, ConnectHandshake) {
  auto c = make_client();
  EXPECT_EQ(c->server_banner(), "remio-srb 3.2.1-sim");
  EXPECT_EQ(server_->sessions_served(), 1u);
}

TEST_F(SrbTest, OpenMissingFails) {
  auto c = make_client();
  try {
    c->open("/nope", kRead);
    FAIL() << "expected SrbError";
  } catch (const SrbError& e) {
    EXPECT_EQ(e.status(), Status::kNotFound);
  }
}

TEST_F(SrbTest, CreateWriteReadBack) {
  auto c = make_client();
  const auto fd = c->open("/home/t/obj", kRead | kWrite | kCreate);
  const Bytes data = to_bytes("the quick brown fox");
  EXPECT_EQ(c->pwrite(fd, ByteSpan(data.data(), data.size()), 0), data.size());
  Bytes back(data.size());
  EXPECT_EQ(c->pread(fd, MutByteSpan(back.data(), back.size()), 0), data.size());
  EXPECT_EQ(back, data);
  c->close(fd);
}

TEST_F(SrbTest, FilePointerSemantics) {
  auto c = make_client();
  const auto fd = c->open("/fp", kRead | kWrite | kCreate);
  const Bytes a = to_bytes("aaaa");
  const Bytes b = to_bytes("bbbb");
  c->write(fd, ByteSpan(a.data(), a.size()));
  c->write(fd, ByteSpan(b.data(), b.size()));  // appended at fp
  EXPECT_EQ(c->seek(fd, 0, Whence::kSet), 0);
  Bytes back(8);
  EXPECT_EQ(c->read(fd, MutByteSpan(back.data(), back.size())), 8u);
  EXPECT_EQ(to_string(ByteSpan(back.data(), back.size())), "aaaabbbb");
  // fp is now at EOF; further reads return 0.
  char extra;
  EXPECT_EQ(c->read(fd, MutByteSpan(&extra, 1)), 0u);
  c->close(fd);
}

TEST_F(SrbTest, SeekWhence) {
  auto c = make_client();
  const auto fd = c->open("/seek", kRead | kWrite | kCreate);
  const Bytes data = to_bytes("0123456789");
  c->pwrite(fd, ByteSpan(data.data(), data.size()), 0);
  EXPECT_EQ(c->seek(fd, 4, Whence::kSet), 4);
  EXPECT_EQ(c->seek(fd, 2, Whence::kCur), 6);
  EXPECT_EQ(c->seek(fd, -3, Whence::kEnd), 7);
  char ch;
  EXPECT_EQ(c->read(fd, MutByteSpan(&ch, 1)), 1u);
  EXPECT_EQ(ch, '7');
  EXPECT_THROW(c->seek(fd, -100, Whence::kSet), SrbError);
  c->close(fd);
}

TEST_F(SrbTest, SparseWriteZeroFills) {
  auto c = make_client();
  const auto fd = c->open("/sparse", kRead | kWrite | kCreate);
  const Bytes tail = to_bytes("end");
  c->pwrite(fd, ByteSpan(tail.data(), tail.size()), 100);
  EXPECT_EQ(c->stat("/sparse")->size, 103u);
  Bytes back(103);
  EXPECT_EQ(c->pread(fd, MutByteSpan(back.data(), back.size()), 0), 103u);
  EXPECT_EQ(back[0], '\0');
  EXPECT_EQ(back[99], '\0');
  EXPECT_EQ(back[100], 'e');
  c->close(fd);
}

TEST_F(SrbTest, TruncFlagResets) {
  auto c = make_client();
  auto fd = c->open("/trunc", kRead | kWrite | kCreate);
  const Bytes data = to_bytes("hello world");
  c->pwrite(fd, ByteSpan(data.data(), data.size()), 0);
  c->close(fd);
  fd = c->open("/trunc", kRead | kWrite | kTrunc);
  EXPECT_EQ(c->stat("/trunc")->size, 0u);
  c->close(fd);
}

TEST_F(SrbTest, StatAndUnlink) {
  auto c = make_client();
  EXPECT_FALSE(c->stat("/gone").has_value());
  const auto fd = c->open("/obj", kWrite | kCreate);
  const Bytes data(1234, 'x');
  c->pwrite(fd, ByteSpan(data.data(), data.size()), 0);
  c->close(fd);
  const auto st = c->stat("/obj");
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->size, 1234u);
  EXPECT_EQ(st->resource, "orion-disk");
  c->unlink("/obj");
  EXPECT_FALSE(c->stat("/obj").has_value());
  EXPECT_THROW(c->unlink("/obj"), SrbError);
}

TEST_F(SrbTest, PermissionBits) {
  auto c = make_client();
  const auto wr = c->open("/perm", kWrite | kCreate);
  Bytes buf(4);
  EXPECT_THROW(c->pread(wr, MutByteSpan(buf.data(), buf.size()), 0), SrbError);
  c->close(wr);
  const auto rd = c->open("/perm", kRead);
  const Bytes data = to_bytes("data");
  EXPECT_THROW(c->pwrite(rd, ByteSpan(data.data(), data.size()), 0), SrbError);
  c->close(rd);
}

TEST_F(SrbTest, BadFdRejected) {
  auto c = make_client();
  Bytes buf(4);
  EXPECT_THROW(c->pread(99, MutByteSpan(buf.data(), buf.size()), 0), SrbError);
  EXPECT_THROW(c->close(99), SrbError);
}

TEST_F(SrbTest, CollectionsAndAttrs) {
  auto c = make_client();
  c->make_collection("/proj/run1");
  const auto fd = c->open("/proj/run1/out", kWrite | kCreate);
  c->close(fd);
  const auto entries = c->list("/proj/run1");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0], "/proj/run1/out");
  EXPECT_THROW(c->list("/missing"), SrbError);

  c->set_attr("/proj/run1/out", "owner", "demo");
  EXPECT_EQ(c->get_attr("/proj/run1/out", "owner").value(), "demo");
  EXPECT_FALSE(c->get_attr("/proj/run1/out", "nope").has_value());
}

TEST_F(SrbTest, LargeTransferIntegrity) {
  auto c = make_client();
  const auto fd = c->open("/big", kRead | kWrite | kCreate);
  Rng rng(5);
  const Bytes data = rng.bytes((1 << 20) + 321);
  EXPECT_EQ(c->pwrite(fd, ByteSpan(data.data(), data.size()), 0), data.size());
  Bytes back(data.size());
  EXPECT_EQ(c->pread(fd, MutByteSpan(back.data(), back.size()), 0), data.size());
  EXPECT_EQ(back, data);
  c->close(fd);
}

TEST_F(SrbTest, ConcurrentClientsDisjointOffsets) {
  // Two connections writing disjoint slices of the same object — the §7.2
  // double-connection pattern at the broker level.
  auto c = make_client();
  const auto fd0 = c->open("/shared", kWrite | kCreate);
  c->close(fd0);

  constexpr std::size_t kSlice = 256 * 1024;
  auto writer = [&](int idx) {
    auto cl = make_client();
    const auto fd = cl->open("/shared", kWrite);
    const Bytes data(kSlice, static_cast<char>('A' + idx));
    cl->pwrite(fd, ByteSpan(data.data(), data.size()),
               static_cast<std::uint64_t>(idx) * kSlice);
    cl->close(fd);
  };
  auto f1 = std::async(std::launch::async, writer, 0);
  auto f2 = std::async(std::launch::async, writer, 1);
  f1.get();
  f2.get();

  const auto fd = c->open("/shared", kRead);
  Bytes back(2 * kSlice);
  EXPECT_EQ(c->pread(fd, MutByteSpan(back.data(), back.size()), 0), back.size());
  EXPECT_EQ(back[0], 'A');
  EXPECT_EQ(back[kSlice - 1], 'A');
  EXPECT_EQ(back[kSlice], 'B');
  EXPECT_EQ(back.back(), 'B');
  c->close(fd);
}

TEST_F(SrbTest, ManyParallelSessions) {
  constexpr int kSessions = 8;
  std::vector<std::future<void>> jobs;
  for (int i = 0; i < kSessions; ++i)
    jobs.push_back(std::async(std::launch::async, [&, i] {
      auto cl = make_client();
      const std::string path = "/many/obj" + std::to_string(i);
      const auto fd = cl->open(path, kRead | kWrite | kCreate);
      const Bytes data(10000, static_cast<char>(i));
      cl->pwrite(fd, ByteSpan(data.data(), data.size()), 0);
      Bytes back(10000);
      EXPECT_EQ(cl->pread(fd, MutByteSpan(back.data(), back.size()), 0), back.size());
      EXPECT_EQ(back, data);
      cl->close(fd);
    }));
  for (auto& j : jobs) j.get();
  EXPECT_EQ(server_->mcat().object_count(), kSessions);
}

TEST_F(SrbTest, DisconnectThenCallsFail) {
  auto c = make_client();
  c->disconnect();
  EXPECT_THROW(c->stat("/x"), SrbError);
  c->disconnect();  // idempotent
}

TEST_F(SrbTest, ServerStopClosesSessions) {
  auto c = make_client();
  server_->stop();
  EXPECT_ANY_THROW({
    const auto fd = c->open("/x", kWrite | kCreate);
    (void)fd;
  });
}

// --- ObjectStore direct ----------------------------------------------------------

TEST(ObjectStore, PreadShortAtEof) {
  ObjectStore store;
  store.create(1);
  const Bytes data = to_bytes("abc");
  store.pwrite(1, ByteSpan(data.data(), data.size()), 0);
  Bytes buf(10);
  EXPECT_EQ(store.pread(1, MutByteSpan(buf.data(), buf.size()), 0), 3u);
  EXPECT_EQ(store.pread(1, MutByteSpan(buf.data(), buf.size()), 5), 0u);
}

TEST(ObjectStore, MissingObjectThrows) {
  ObjectStore store;
  Bytes buf(1);
  EXPECT_THROW(store.pread(7, MutByteSpan(buf.data(), buf.size()), 0),
               std::out_of_range);
}

TEST(ObjectStore, TotalBytesAndRemove) {
  ObjectStore store;
  store.create(1);
  store.create(2);
  const Bytes data(100, 'x');
  store.pwrite(1, ByteSpan(data.data(), data.size()), 0);
  store.pwrite(2, ByteSpan(data.data(), data.size()), 50);
  EXPECT_EQ(store.total_bytes(), 250u);
  store.remove(1);
  EXPECT_EQ(store.total_bytes(), 150u);
  EXPECT_FALSE(store.exists(1));
}

TEST(ObjectStore, CreateIsIdempotent) {
  ObjectStore store;
  store.create(1);
  const Bytes data = to_bytes("keep");
  store.pwrite(1, ByteSpan(data.data(), data.size()), 0);
  store.create(1);  // must not clobber
  EXPECT_EQ(store.size(1), 4u);
}

// --- at-rest integrity -------------------------------------------------------

TEST(ObjectStore, CorruptionDetectedOnRead) {
  ObjectStore store;
  store.create(1);
  Bytes data(200000);
  Rng rng(1);
  for (auto& b : data) b = static_cast<char>(rng.next());
  store.pwrite(1, ByteSpan(data.data(), data.size()), 0);

  ASSERT_TRUE(store.corrupt(1, 150000));  // second 64K block
  Bytes back(data.size());
  // A read covering the rotten block throws; one confined to clean blocks
  // still succeeds (per-block sums localize the damage).
  EXPECT_THROW(store.pread(1, MutByteSpan(back.data(), back.size()), 0),
               IntegrityError);
  EXPECT_EQ(store.pread(1, MutByteSpan(back.data(), 60000), 0), 60000u);
  // Rewriting the bad block's bytes re-hashes it: reads recover.
  store.pwrite(1, ByteSpan(data.data() + 131072, 65536), 131072);
  EXPECT_EQ(store.pread(1, MutByteSpan(back.data(), back.size()), 0),
            data.size());
  EXPECT_EQ(back, data);
}

TEST(ObjectStore, TruncateAndGapWritesKeepSumsFresh) {
  ObjectStore store;
  store.create(1);
  Bytes data(300000, 'q');
  store.pwrite(1, ByteSpan(data.data(), data.size()), 0);
  // Shrink to a mid-block boundary, then re-grow via a sparse write: the
  // zero-extension gap and the partial tail block must both be re-hashed.
  store.truncate(1, 100000);
  store.pwrite(1, ByteSpan(data.data(), 10), 250000);
  Bytes back(250010);
  EXPECT_EQ(store.pread(1, MutByteSpan(back.data(), back.size()), 0),
            back.size());
  for (std::size_t i = 100000; i < 250000; ++i)
    ASSERT_EQ(back[i], 0) << "gap byte " << i;
  store.truncate(1, 0);
  EXPECT_EQ(store.pread(1, MutByteSpan(back.data(), back.size()), 0), 0u);
}

TEST(ObjectStore, ScrubQuarantinesAndHeals) {
  ObjectStore store;
  store.create(1);
  store.create(2);
  Bytes data(100000, 'z');
  store.pwrite(1, ByteSpan(data.data(), data.size()), 0);
  store.pwrite(2, ByteSpan(data.data(), data.size()), 0);

  ASSERT_TRUE(store.corrupt(2, 5));
  ScrubReport rep = store.scrub();
  EXPECT_EQ(rep.objects, 2u);
  EXPECT_EQ(rep.mismatched, 1u);
  EXPECT_EQ(rep.quarantined, 1u);
  EXPECT_EQ(rep.healed, 0u);
  EXPECT_TRUE(store.is_quarantined(2));
  EXPECT_FALSE(store.is_quarantined(1));

  // Reads of the quarantined object fail non-retryably; the clean one works.
  Bytes back(16);
  try {
    store.pread(2, MutByteSpan(back.data(), back.size()), 0);
    FAIL() << "expected IntegrityError";
  } catch (const IntegrityError& e) {
    EXPECT_TRUE(e.quarantined());
    EXPECT_FALSE(e.retryable());
    EXPECT_EQ(e.domain(), remio::ErrorDomain::kIntegrity);
  }
  EXPECT_EQ(store.pread(1, MutByteSpan(back.data(), back.size()), 0), 16u);

  // Writes remain allowed (the repair path); a clean re-scrub heals.
  store.pwrite(2, ByteSpan(data.data(), 65536), 0);
  rep = store.scrub();
  EXPECT_EQ(rep.mismatched, 0u);
  EXPECT_EQ(rep.healed, 1u);
  EXPECT_FALSE(store.is_quarantined(2));
  EXPECT_EQ(store.pread(2, MutByteSpan(back.data(), back.size()), 0), 16u);
}

// --- wire checksums: negotiation + interop ----------------------------------

TEST_F(SrbTest, WireChecksumsNegotiatedByDefault) {
  auto c = make_client();
  EXPECT_TRUE(c->wire_checksums());
  const auto fd = c->open("/crc/on", kRead | kWrite | kCreate);
  const Bytes data = to_bytes("covered by crc32c trailers");
  EXPECT_EQ(c->pwrite(fd, ByteSpan(data.data(), data.size()), 0), data.size());
  Bytes back(data.size());
  EXPECT_EQ(c->pread(fd, MutByteSpan(back.data(), back.size()), 0), data.size());
  EXPECT_EQ(back, data);
  EXPECT_EQ(c->crc_failures(), 0u);
  c->close(fd);
}

TEST_F(SrbTest, OldClientAgainstNewServerInterops) {
  // wire_checksums=false makes the client bit-identical to a pre-integrity
  // one: no flags at connect, so the server must not ack and the whole
  // session must run the unchecked protocol.
  auto old_c = std::make_unique<SrbClient>(fabric_, "node0", "orion", 5544,
                                           simnet::ConnectOptions{}, "old-client",
                                           "", /*wire_checksums=*/false);
  EXPECT_FALSE(old_c->wire_checksums());
  const auto fd = old_c->open("/crc/old", kRead | kWrite | kCreate);
  const Bytes data = to_bytes("plain frames");
  EXPECT_EQ(old_c->pwrite(fd, ByteSpan(data.data(), data.size()), 0),
            data.size());
  Bytes back(data.size());
  EXPECT_EQ(old_c->pread(fd, MutByteSpan(back.data(), back.size()), 0),
            data.size());
  EXPECT_EQ(back, data);
  old_c->close(fd);
}

TEST_F(SrbTest, NewClientAgainstOldServerDowngrades) {
  // A server with the feature off behaves like an old broker: it never
  // echoes flags, and the new client silently downgrades.
  ServerConfig cfg;
  cfg.port = 5599;
  cfg.wire_checksums = false;
  SrbServer old_server(fabric_, cfg);
  old_server.start();
  SrbClient c(fabric_, "node0", "orion", 5599);
  EXPECT_FALSE(c.wire_checksums());
  const auto fd = c.open("/crc/downgrade", kRead | kWrite | kCreate);
  const Bytes data = to_bytes("negotiated off");
  EXPECT_EQ(c.pwrite(fd, ByteSpan(data.data(), data.size()), 0), data.size());
  Bytes back(data.size());
  EXPECT_EQ(c.pread(fd, MutByteSpan(back.data(), back.size()), 0), data.size());
  EXPECT_EQ(back, data);
  c.close(fd);
  c.disconnect();
  old_server.stop();
}

TEST_F(SrbTest, WireOverheadIsExactlyFourBytesPerFrame) {
  // Pins the frame format: a CRC session moves exactly 4 extra bytes per
  // message in each direction (the trailer; plus the 4-byte flags field in
  // the connect exchange). Also proves a checksums-off session is
  // byte-identical to the pre-integrity protocol, whose costs these same
  // op sequences pinned before this feature existed.
  const auto run_ops = [&](SrbClient& c) {
    const auto fd = c.open("/crc/overhead", kRead | kWrite | kCreate);
    Bytes data(10000, 'k');
    c.pwrite(fd, ByteSpan(data.data(), data.size()), 0);
    Bytes back(10000);
    c.pread(fd, MutByteSpan(back.data(), back.size()), 0);
    c.close(fd);
    c.disconnect();
  };
  auto on = make_client();
  run_ops(*on);
  const std::uint64_t on_sent = on->bytes_sent();
  const std::uint64_t on_recv = on->bytes_received();
  const std::uint64_t rpcs = on->rpc_count();

  auto off = std::make_unique<SrbClient>(fabric_, "node0", "orion", 5544,
                                         simnet::ConnectOptions{}, "remio-client",
                                         "", /*wire_checksums=*/false);
  run_ops(*off);
  // Every frame (request and response) carries a 4-byte trailer except the
  // two connect frames, which instead carry the 4-byte flags/ack fields:
  // the delta is exactly 4 * rpc_count in each direction.
  EXPECT_EQ(on_sent - off->bytes_sent(), 4u * rpcs);
  EXPECT_EQ(on_recv - off->bytes_received(), 4u * rpcs);
  EXPECT_EQ(off->rpc_count(), rpcs);
}

// --- end-to-end corruption: in flight and at rest ---------------------------

TEST_F(SrbTest, InFlightCorruptionSurfacesAndSessionSurvives) {
  auto fault = std::make_shared<simnet::FaultInjector>();
  fabric_.set_fault_injector(fault);
  auto c = make_client();
  ASSERT_TRUE(c->wire_checksums());
  const auto fd = c->open("/crc/flight", kRead | kWrite | kCreate);
  Bytes data(20000, 'w');
  c->pwrite(fd, ByteSpan(data.data(), data.size()), 0);

  // Corrupt every send until further notice: whichever direction the flip
  // lands in, the op must fail with the retryable integrity status and the
  // wrong bytes must never be accepted.
  fault->set_corrupt_probability(1.0);
  Bytes back(20000);
  try {
    c->pread(fd, MutByteSpan(back.data(), back.size()), 0);
    FAIL() << "expected SrbError";
  } catch (const SrbError& e) {
    EXPECT_EQ(e.status(), Status::kChecksumMismatch);
    EXPECT_TRUE(e.retryable());
    EXPECT_EQ(e.domain(), remio::ErrorDomain::kIntegrity);
  }
  EXPECT_GE(fault->corruptions(), 1u);

  // Same socket, same session: once the line is clean the op just works.
  fault->set_corrupt_probability(0.0);
  EXPECT_EQ(c->pread(fd, MutByteSpan(back.data(), back.size()), 0),
            data.size());
  EXPECT_EQ(back, data);
  c->close(fd);
}

TEST_F(SrbTest, AtRestCorruptionSurfacesOverTheWire) {
  auto c = make_client();
  const auto fd = c->open("/crc/rest", kRead | kWrite | kCreate);
  Bytes data(100000, 'r');
  c->pwrite(fd, ByteSpan(data.data(), data.size()), 0);
  const auto st = c->stat("/crc/rest");
  ASSERT_TRUE(st.has_value());

  ASSERT_TRUE(server_->store().corrupt(st->object_id, 42));
  Bytes back(100000);
  try {
    c->pread(fd, MutByteSpan(back.data(), back.size()), 0);
    FAIL() << "expected SrbError";
  } catch (const SrbError& e) {
    EXPECT_EQ(e.status(), Status::kChecksumMismatch);
    EXPECT_TRUE(e.retryable());
  }
  // The session survived the server-side throw; other objects still serve.
  const auto fd2 = c->open("/crc/other", kRead | kWrite | kCreate);
  c->pwrite(fd2, ByteSpan(data.data(), 100), 0);
  EXPECT_EQ(c->pread(fd2, MutByteSpan(back.data(), 100), 0), 100u);
  c->close(fd2);
}

TEST_F(SrbTest, AdminScrubQuarantinesOverTheWire) {
  auto c = make_client();
  const auto fd = c->open("/crc/scrubme", kRead | kWrite | kCreate);
  Bytes data(70000, 's');
  c->pwrite(fd, ByteSpan(data.data(), data.size()), 0);
  const auto st = c->stat("/crc/scrubme");
  ASSERT_TRUE(st.has_value());

  SrbClient::ScrubResult rep = c->scrub();
  EXPECT_GE(rep.objects, 1u);
  EXPECT_EQ(rep.mismatched, 0u);

  ASSERT_TRUE(server_->store().corrupt(st->object_id, 65536));
  rep = c->scrub();
  EXPECT_EQ(rep.mismatched, 1u);
  EXPECT_EQ(rep.quarantined, 1u);

  // kQuarantined is terminal until repaired — and distinct from a plain
  // mismatch so supervisors don't burn retries on it.
  Bytes back(16);
  try {
    c->pread(fd, MutByteSpan(back.data(), back.size()), 0);
    FAIL() << "expected SrbError";
  } catch (const SrbError& e) {
    EXPECT_EQ(e.status(), Status::kQuarantined);
    EXPECT_FALSE(e.retryable());
  }

  // Repair by rewriting the damaged block, then scrub-heal.
  c->pwrite(fd, ByteSpan(data.data() + 65536, data.size() - 65536), 65536);
  rep = c->scrub();
  EXPECT_EQ(rep.healed, 1u);
  EXPECT_EQ(c->pread(fd, MutByteSpan(back.data(), back.size()), 0), 16u);
  c->close(fd);
}

}  // namespace
}  // namespace remio::srb
