// Multi-tenant broker tests: namespace carve-outs, quota enforcement and
// exact byte accounting under concurrent writers, the kQuotaExceeded wire
// round-trip, and the DRR admission scheduler's fair-share / no-starvation
// bounds. Tenancy default-off behaviour is pinned too, since the paper
// baselines run untenanted.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "simnet/timescale.hpp"
#include "srb/client.hpp"
#include "srb/server.hpp"
#include "srb/tenant.hpp"

namespace remio::srb {
namespace {

class TenantTest : public ::testing::Test {
 protected:
  TenantTest() : scale_(2000.0) {
    simnet::HostSpec server_host;
    server_host.name = "orion";
    fabric_.add_host(server_host);
    simnet::HostSpec client_host;
    client_host.name = "node0";
    client_host.latency_to_core = 0.001;
    fabric_.add_host(client_host);
  }

  void start_server(TenantConfig tenants) {
    ServerConfig cfg;
    cfg.tenants = std::move(tenants);
    server_ = std::make_unique<SrbServer>(fabric_, std::move(cfg));
    server_->start();
  }

  std::unique_ptr<SrbClient> make_client(const std::string& tenant = "",
                                         const std::string& name = "t-client") {
    return std::make_unique<SrbClient>(fabric_, "node0", "orion", 5544,
                                       simnet::ConnectOptions{}, name, tenant);
  }

  static Bytes filled(std::size_t n, char c) { return Bytes(n, c); }

  simnet::ScopedTimeScale scale_;
  simnet::Fabric fabric_;
  std::unique_ptr<SrbServer> server_;
};

TEST_F(TenantTest, NamespaceIsolation) {
  TenantConfig tc;
  tc.enabled = true;
  start_server(tc);

  auto alpha = make_client("alpha");
  auto beta = make_client("beta");

  // Same client-visible path, distinct physical objects.
  const auto fa = alpha->open("/data/obj", kRead | kWrite | kCreate);
  const auto fb = beta->open("/data/obj", kRead | kWrite | kCreate);
  const Bytes da = filled(64, 'a');
  const Bytes db = filled(256, 'b');
  alpha->pwrite(fa, ByteSpan(da.data(), da.size()), 0);
  beta->pwrite(fb, ByteSpan(db.data(), db.size()), 0);

  EXPECT_EQ(alpha->stat("/data/obj")->size, 64u);
  EXPECT_EQ(beta->stat("/data/obj")->size, 256u);
  Bytes back(64);
  alpha->pread(fa, MutByteSpan(back.data(), back.size()), 0);
  EXPECT_EQ(back, da);

  // A tenant's listing is unmapped back to its own view of the tree.
  const auto ls = alpha->list("/data");
  ASSERT_EQ(ls.size(), 1u);
  EXPECT_EQ(ls[0], "/data/obj");

  // An untenanted session sees the physical carve-outs.
  auto admin = make_client();
  EXPECT_TRUE(admin->stat("/tenants/alpha/data/obj").has_value());
  EXPECT_EQ(admin->stat("/tenants/alpha/data/obj")->size, 64u);
  const auto roots = admin->list("/tenants");
  EXPECT_NE(std::find(roots.begin(), roots.end(), "/tenants/alpha"),
            roots.end());
  EXPECT_NE(std::find(roots.begin(), roots.end(), "/tenants/beta"),
            roots.end());

  // Unlink through the tenant view removes the physical object.
  alpha->unlink("/data/obj");
  EXPECT_FALSE(admin->stat("/tenants/alpha/data/obj").has_value());
  EXPECT_TRUE(admin->stat("/tenants/beta/data/obj").has_value());

  alpha->close(fa);
  beta->close(fb);
}

TEST_F(TenantTest, TenancyOffIgnoresTenantLogin) {
  start_server(TenantConfig{});  // enabled = false

  auto c = make_client("alpha");
  const auto fd = c->open("/obj", kWrite | kCreate);
  c->pwrite(fd, ByteSpan(filled(8, 'x').data(), 8), 0);
  c->close(fd);

  // No carve-out happened: the object lives at the root and no tenant
  // state was created.
  auto admin = make_client();
  EXPECT_TRUE(admin->stat("/obj").has_value());
  EXPECT_FALSE(admin->stat("/tenants/alpha/obj").has_value());
  EXPECT_TRUE(server_->tenants().names().empty());
}

TEST_F(TenantTest, SlashInTenantNameRejected) {
  TenantConfig tc;
  tc.enabled = true;
  start_server(tc);
  try {
    make_client("alpha/../../etc");
    FAIL() << "expected SrbError";
  } catch (const SrbError& e) {
    EXPECT_EQ(e.status(), Status::kInvalid);
  }
}

TEST_F(TenantTest, ObjectQuotaRoundTrip) {
  TenantConfig tc;
  tc.enabled = true;
  tc.default_quota.max_objects = 2;
  start_server(tc);

  auto c = make_client("alpha");
  c->close(c->open("/a", kWrite | kCreate));
  c->close(c->open("/b", kWrite | kCreate));
  try {
    c->open("/c", kWrite | kCreate);
    FAIL() << "expected SrbError";
  } catch (const SrbError& e) {
    EXPECT_EQ(e.status(), Status::kQuotaExceeded);
  }
  EXPECT_EQ(server_->tenants().find("alpha")->objects(), 2u);

  // Reopening an existing object consumes no quota slot...
  c->close(c->open("/a", kRead));
  // ...and unlinking releases one.
  c->unlink("/b");
  c->close(c->open("/c", kWrite | kCreate));
  EXPECT_EQ(server_->tenants().find("alpha")->objects(), 2u);
}

TEST_F(TenantTest, ByteQuotaEnforcedAndReleasedOnTrunc) {
  TenantConfig tc;
  tc.enabled = true;
  tc.default_quota.max_bytes = 1024;
  start_server(tc);

  auto c = make_client("alpha");
  const auto fd = c->open("/obj", kRead | kWrite | kCreate);
  const Bytes big = filled(1024, 'x');
  EXPECT_EQ(c->pwrite(fd, ByteSpan(big.data(), big.size()), 0), 1024u);

  // Growth past the cap is rejected; in-place overwrite is free.
  try {
    c->pwrite(fd, ByteSpan(big.data(), 1), 1024);
    FAIL() << "expected SrbError";
  } catch (const SrbError& e) {
    EXPECT_EQ(e.status(), Status::kQuotaExceeded);
  }
  EXPECT_EQ(c->pwrite(fd, ByteSpan(big.data(), 512), 256), 512u);
  EXPECT_EQ(server_->tenants().find("alpha")->bytes(), 1024u);
  c->close(fd);

  // Truncating on reopen returns the footprint.
  c->close(c->open("/obj", kWrite | kTrunc));
  EXPECT_EQ(server_->tenants().find("alpha")->bytes(), 0u);
  const auto fd2 = c->open("/obj", kWrite);
  EXPECT_EQ(c->pwrite(fd2, ByteSpan(big.data(), big.size()), 0), 1024u);
  c->close(fd2);
}

TEST_F(TenantTest, ByteAccountingExactUnderConcurrentWriters) {
  TenantConfig tc;
  tc.enabled = true;  // unlimited default quota: accounting only
  start_server(tc);

  // 4 writers of one tenant hammer a shared object (racing extensions and
  // overwrites) plus a private object each. After quiescence the tenant's
  // byte counter must equal the exact sum of its objects' sizes.
  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 48;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      auto c = make_client("acct", "writer-" + std::to_string(w));
      const auto shared = c->open("/shared", kWrite | kCreate);
      const auto mine =
          c->open("/own-" + std::to_string(w), kWrite | kCreate);
      std::uint64_t state = 0x9e3779b9u * (w + 1);
      const Bytes chunk = filled(512, static_cast<char>('a' + w));
      for (int i = 0; i < kOpsPerWriter; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const std::uint64_t at = (state >> 33) % 8192;
        const std::size_t len = 64 + (state & 255);
        c->pwrite(i % 2 == 0 ? shared : mine, ByteSpan(chunk.data(), len), at);
      }
      c->close(shared);
      c->close(mine);
    });
  }
  for (auto& t : threads) t.join();

  auto c = make_client("acct");
  std::uint64_t expect = c->stat("/shared")->size;
  for (int w = 0; w < kWriters; ++w)
    expect += c->stat("/own-" + std::to_string(w))->size;
  const auto* tenant = server_->tenants().find("acct");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->bytes(), expect);
  EXPECT_EQ(tenant->objects(), static_cast<std::uint64_t>(kWriters + 1));
}

TEST_F(TenantTest, InflightCapUnit) {
  TenantConfig tc;
  tc.default_quota.max_inflight = 2;
  TenantRegistry reg(tc);
  auto& t = reg.login("x");
  EXPECT_TRUE(t.try_begin_op());
  EXPECT_TRUE(t.try_begin_op());
  EXPECT_FALSE(t.try_begin_op());
  t.end_op();
  EXPECT_TRUE(t.try_begin_op());
  EXPECT_EQ(t.inflight(), 2u);
  EXPECT_EQ(t.ops(), 3u);  // rejected attempts don't count as served ops
}

TEST_F(TenantTest, DrrFairShareAndNoStarvation) {
  TenantConfig tc;
  tc.enabled = true;
  tc.service_slots = 1;
  tc.drr_quantum = 1;
  TenantRegistry reg(tc);
  reg.set_quota("heavy", {0, 0, 0, /*weight=*/3});
  reg.set_quota("light", {0, 0, 0, /*weight=*/1});
  auto& heavy = *reg.find("heavy");
  auto& light = *reg.find("light");
  auto& holder = reg.login("holder");
  DrrScheduler sched(tc);

  // Hold the single slot so a known queue builds behind it.
  sched.acquire(holder);

  std::mutex order_mu;
  std::vector<char> order;  // 'H' / 'L' in grant order
  constexpr int kHeavyOps = 12;
  constexpr int kLightOps = 4;
  std::vector<std::thread> threads;
  for (int i = 0; i < kHeavyOps; ++i) {
    threads.emplace_back([&] {
      sched.acquire(heavy);
      {
        std::lock_guard lk(order_mu);
        order.push_back('H');
      }
      sched.release();
    });
  }
  for (int i = 0; i < kLightOps; ++i) {
    threads.emplace_back([&] {
      sched.acquire(light);
      {
        std::lock_guard lk(order_mu);
        order.push_back('L');
      }
      sched.release();
    });
  }
  while (sched.waiting() < kHeavyOps + kLightOps)
    std::this_thread::yield();
  sched.release();  // open the floodgates
  for (auto& t : threads) t.join();

  ASSERT_EQ(order.size(), static_cast<std::size_t>(kHeavyOps + kLightOps));
  // Weighted fair share: every replenish round grants heavy 3 and light 1
  // (both queues stay non-empty through round 4), so each 4-grant window
  // holds exactly one light grant — the no-starvation bound: a light op is
  // admitted within one round regardless of the heavy backlog.
  for (int round = 0; round < 4; ++round) {
    const auto begin = order.begin() + round * 4;
    EXPECT_EQ(std::count(begin, begin + 4, 'L'), 1)
        << "round " << round << " violated the weighted share";
  }
  EXPECT_GE(sched.rounds(), 4u);
}

TEST_F(TenantTest, InflightCapRejectsOverWire) {
  TenantConfig tc;
  tc.enabled = true;
  tc.default_quota.max_inflight = 4;
  start_server(tc);

  // Saturate the cap from the registry side (as if 4 ops were parked on
  // slow disk), then verify the wire-level rejection a 5th op gets.
  auto c = make_client("alpha");
  const auto fd = c->open("/obj", kRead | kWrite | kCreate);
  auto& t = *server_->tenants().find("alpha");
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(t.try_begin_op());
  try {
    c->pwrite(fd, ByteSpan(filled(8, 'x').data(), 8), 0);
    FAIL() << "expected SrbError";
  } catch (const SrbError& e) {
    EXPECT_EQ(e.status(), Status::kQuotaExceeded);
  }
  for (int i = 0; i < 4; ++i) t.end_op();
  EXPECT_EQ(c->pwrite(fd, ByteSpan(filled(8, 'x').data(), 8), 0), 8u);
  c->close(fd);
}

}  // namespace
}  // namespace remio::srb
