// Opt-in chaos knob for CI: REMIO_CHAOS_CORRUPT=<probability> raises the
// ambient in-flight corruption rate that corruption-aware fixtures inject on
// supervised (semplar/) connections. Unset or 0 leaves suites deterministic
// at their built-in rates.
#pragma once

#include <cstdlib>

namespace remio {

inline double chaos_corrupt_rate() {
  const char* v = std::getenv("REMIO_CHAOS_CORRUPT");
  if (v == nullptr || *v == '\0') return 0.0;
  const double p = std::atof(v);
  return (p > 0.0 && p <= 1.0) ? p : 0.0;
}

}  // namespace remio
