// Bio substrate tests: FASTA round-trip, synthetic EST properties
// (determinism, alphabet, compressibility), k-mer index and the
// seed-and-extend aligner (planted matches must be found).
#include <gtest/gtest.h>

#include "bio/align.hpp"
#include "bio/fasta.hpp"
#include "bio/kmer_index.hpp"
#include "bio/synth.hpp"
#include "compress/codec.hpp"

namespace remio::bio {
namespace {

TEST(Fasta, ParseBasic) {
  const auto seqs = parse_fasta(">seq1 description here\nACGT\nACGT\n\n>seq2\r\nTTTT\n");
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0].id, "seq1");
  EXPECT_EQ(seqs[0].residues, "ACGTACGT");
  EXPECT_EQ(seqs[1].id, "seq2");
  EXPECT_EQ(seqs[1].residues, "TTTT");
}

TEST(Fasta, RoundTrip) {
  std::vector<Sequence> seqs = {{"a", std::string(150, 'A')}, {"b", "ACGT"}};
  const auto parsed = parse_fasta(write_fasta(seqs, 70));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].residues, seqs[0].residues);
  EXPECT_EQ(parsed[1].residues, seqs[1].residues);
}

TEST(Fasta, ResiduesBeforeHeaderThrows) {
  EXPECT_THROW(parse_fasta("ACGT\n>late\n"), std::runtime_error);
}

TEST(Fasta, EmptyInput) { EXPECT_TRUE(parse_fasta("").empty()); }

TEST(Synth, DeterministicForSeed) {
  SynthConfig cfg;
  cfg.seed = 11;
  cfg.genome_length = 10000;
  EstGenerator a(cfg);
  EstGenerator b(cfg);
  EXPECT_EQ(a.genome(), b.genome());
  const auto sa = a.sample(5);
  const auto sb = b.sample(5);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) EXPECT_EQ(sa[i].residues, sb[i].residues);
}

TEST(Synth, AlphabetAndLengths) {
  SynthConfig cfg;
  cfg.genome_length = 50000;
  cfg.est_min_length = 100;
  cfg.est_max_length = 300;
  EstGenerator gen(cfg);
  for (const auto& s : gen.sample(50)) {
    EXPECT_GE(s.residues.size(), 100u);
    EXPECT_LE(s.residues.size(), 300u);
    for (char c : s.residues)
      EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T') << c;
  }
}

TEST(Synth, TextIsCompressibleLikeEsts) {
  // §7.3's premise: nucleotide EST text compresses roughly 2x with a fast
  // LZ codec. The generator is tuned to land in that regime.
  SynthConfig cfg;
  cfg.seed = 7;
  cfg.genome_length = 96 * 1024;
  EstGenerator gen(cfg);
  const std::string text = gen.nucleotide_text(1 << 20);
  const auto& codec = compress::codec_by_name("lzmini");
  Bytes out;
  codec.compress(ByteSpan(text.data(), text.size()), out);
  const double ratio = static_cast<double>(text.size()) / static_cast<double>(out.size());
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 3.2);
}

TEST(Synth, TextExactSizeAndFastaShaped) {
  SynthConfig cfg;
  EstGenerator gen(cfg);
  const std::string text = gen.nucleotide_text(100000);
  EXPECT_EQ(text.size(), 100000u);
  EXPECT_EQ(text[0], '>');
}

TEST(KmerIndex, PackBase) {
  EXPECT_EQ(pack_base('A').value(), 0u);
  EXPECT_EQ(pack_base('t').value(), 3u);
  EXPECT_FALSE(pack_base('N').has_value());
}

TEST(KmerIndex, FindsOccurrences) {
  std::vector<Sequence> db = {{"s0", "AAACGTACGTTT"}, {"s1", "GGGACGTACGGG"}};
  KmerIndex index(db, 7);
  const auto key = index.pack("ACGTACG");
  ASSERT_TRUE(key.has_value());
  const auto& hits = index.lookup(*key);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].seq_index, 0u);
  EXPECT_EQ(hits[0].position, 2u);
  EXPECT_EQ(hits[1].seq_index, 1u);
  EXPECT_EQ(hits[1].position, 3u);
}

TEST(KmerIndex, RejectsBadK) {
  std::vector<Sequence> db;
  EXPECT_THROW(KmerIndex(db, 0), std::invalid_argument);
  EXPECT_THROW(KmerIndex(db, 16), std::invalid_argument);
}

TEST(KmerIndex, MissingKmerGivesEmpty) {
  std::vector<Sequence> db = {{"s", "AAAAAAAAAA"}};
  KmerIndex index(db, 5);
  const auto key = index.pack("CCCCC");
  ASSERT_TRUE(key.has_value());
  EXPECT_TRUE(index.lookup(*key).empty());
}

TEST(Aligner, FindsPlantedExactMatch) {
  SynthConfig cfg;
  cfg.seed = 23;
  cfg.genome_length = 20000;
  EstGenerator gen(cfg);
  auto db = gen.sample(50);

  // Plant a query that is an exact substring of db sequence 10.
  Sequence query;
  query.id = "probe";
  query.residues = db[10].residues.substr(5, 80);

  KmerIndex index(db, 11);
  Aligner aligner(db, index);
  const auto hits = aligner.search(query);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].db_seq, 10u);
  EXPECT_GE(hits[0].score, 80);  // exact 80-mer scores ~80
  EXPECT_EQ(hits[0].db_start, 5u);
  EXPECT_EQ(hits[0].query_start, 0u);
}

TEST(Aligner, ToleratesMutations) {
  SynthConfig cfg;
  cfg.seed = 29;
  cfg.genome_length = 20000;
  EstGenerator gen(cfg);
  auto db = gen.sample(40);

  std::string q = db[3].residues.substr(10, 120);
  q[40] = q[40] == 'A' ? 'C' : 'A';  // single substitution
  Sequence query{"mut", q};

  KmerIndex index(db, 11);
  Aligner aligner(db, index);
  const auto hits = aligner.search(query);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].db_seq, 3u);
  EXPECT_GT(hits[0].score, 80);
}

TEST(Aligner, NoHitsForForeignSequence) {
  std::vector<Sequence> db = {{"s", std::string(2000, 'A')}};
  KmerIndex index(db, 11);
  Aligner aligner(db, index);
  Sequence query{"q", "CGCGCGTATATAGCGCATCGATCGAT"};
  EXPECT_TRUE(aligner.search(query).empty());
}

TEST(Aligner, ShortQueryBelowKIsEmpty) {
  std::vector<Sequence> db = {{"s", "ACGTACGTACGTACGT"}};
  KmerIndex index(db, 11);
  Aligner aligner(db, index);
  Sequence query{"q", "ACGT"};
  EXPECT_TRUE(aligner.search(query).empty());
}

TEST(Aligner, HitsSortedByScoreAndCapped) {
  SynthConfig cfg;
  cfg.seed = 31;
  cfg.genome_length = 5000;
  EstGenerator gen(cfg);
  AlignParams params;
  params.max_hits_per_query = 4;
  auto db = gen.sample(60);
  Sequence query{"q", db[0].residues};
  KmerIndex index(db, 11);
  Aligner aligner(db, index, params);
  const auto hits = aligner.search(query);
  EXPECT_LE(hits.size(), 4u);
  for (std::size_t i = 1; i < hits.size(); ++i)
    EXPECT_GE(hits[i - 1].score, hits[i].score);
}

TEST(Aligner, ReportFormat) {
  SynthConfig cfg;
  cfg.genome_length = 10000;
  EstGenerator gen(cfg);
  auto db = gen.sample(20);
  Sequence query{"q1", db[7].residues.substr(0, 100)};
  KmerIndex index(db, 11);
  Aligner aligner(db, index);
  const auto hits = aligner.search(query);
  const std::string report = aligner.report(query, hits);
  EXPECT_NE(report.find("Query= q1"), std::string::npos);
  EXPECT_NE(report.find("Score = "), std::string::npos);

  const std::string empty_report = aligner.report(query, {});
  EXPECT_NE(empty_report.find("No hits found"), std::string::npos);
}

}  // namespace
}  // namespace remio::bio
