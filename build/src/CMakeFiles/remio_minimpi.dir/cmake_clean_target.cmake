file(REMOVE_RECURSE
  "libremio_minimpi.a"
)
