# Empty dependencies file for remio_minimpi.
# This may be replaced when dependencies are built.
