file(REMOVE_RECURSE
  "CMakeFiles/remio_minimpi.dir/minimpi/comm.cpp.o"
  "CMakeFiles/remio_minimpi.dir/minimpi/comm.cpp.o.d"
  "CMakeFiles/remio_minimpi.dir/minimpi/runtime.cpp.o"
  "CMakeFiles/remio_minimpi.dir/minimpi/runtime.cpp.o.d"
  "libremio_minimpi.a"
  "libremio_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remio_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
