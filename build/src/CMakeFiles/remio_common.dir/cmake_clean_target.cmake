file(REMOVE_RECURSE
  "libremio_common.a"
)
