# Empty compiler generated dependencies file for remio_common.
# This may be replaced when dependencies are built.
