file(REMOVE_RECURSE
  "CMakeFiles/remio_common.dir/common/log.cpp.o"
  "CMakeFiles/remio_common.dir/common/log.cpp.o.d"
  "CMakeFiles/remio_common.dir/common/options.cpp.o"
  "CMakeFiles/remio_common.dir/common/options.cpp.o.d"
  "CMakeFiles/remio_common.dir/common/stats.cpp.o"
  "CMakeFiles/remio_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/remio_common.dir/common/table.cpp.o"
  "CMakeFiles/remio_common.dir/common/table.cpp.o.d"
  "libremio_common.a"
  "libremio_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remio_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
