file(REMOVE_RECURSE
  "libremio_core.a"
)
