# Empty dependencies file for remio_core.
# This may be replaced when dependencies are built.
