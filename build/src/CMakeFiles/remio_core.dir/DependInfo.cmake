
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/async_engine.cpp" "src/CMakeFiles/remio_core.dir/core/async_engine.cpp.o" "gcc" "src/CMakeFiles/remio_core.dir/core/async_engine.cpp.o.d"
  "/root/repo/src/core/compress_pipe.cpp" "src/CMakeFiles/remio_core.dir/core/compress_pipe.cpp.o" "gcc" "src/CMakeFiles/remio_core.dir/core/compress_pipe.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/remio_core.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/remio_core.dir/core/config.cpp.o.d"
  "/root/repo/src/core/srbfs.cpp" "src/CMakeFiles/remio_core.dir/core/srbfs.cpp.o" "gcc" "src/CMakeFiles/remio_core.dir/core/srbfs.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/CMakeFiles/remio_core.dir/core/stats.cpp.o" "gcc" "src/CMakeFiles/remio_core.dir/core/stats.cpp.o.d"
  "/root/repo/src/core/stream_pool.cpp" "src/CMakeFiles/remio_core.dir/core/stream_pool.cpp.o" "gcc" "src/CMakeFiles/remio_core.dir/core/stream_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/remio_mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/remio_srb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/remio_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/remio_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/remio_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/remio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
