file(REMOVE_RECURSE
  "CMakeFiles/remio_core.dir/core/async_engine.cpp.o"
  "CMakeFiles/remio_core.dir/core/async_engine.cpp.o.d"
  "CMakeFiles/remio_core.dir/core/compress_pipe.cpp.o"
  "CMakeFiles/remio_core.dir/core/compress_pipe.cpp.o.d"
  "CMakeFiles/remio_core.dir/core/config.cpp.o"
  "CMakeFiles/remio_core.dir/core/config.cpp.o.d"
  "CMakeFiles/remio_core.dir/core/srbfs.cpp.o"
  "CMakeFiles/remio_core.dir/core/srbfs.cpp.o.d"
  "CMakeFiles/remio_core.dir/core/stats.cpp.o"
  "CMakeFiles/remio_core.dir/core/stats.cpp.o.d"
  "CMakeFiles/remio_core.dir/core/stream_pool.cpp.o"
  "CMakeFiles/remio_core.dir/core/stream_pool.cpp.o.d"
  "libremio_core.a"
  "libremio_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remio_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
