
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/fabric.cpp" "src/CMakeFiles/remio_simnet.dir/simnet/fabric.cpp.o" "gcc" "src/CMakeFiles/remio_simnet.dir/simnet/fabric.cpp.o.d"
  "/root/repo/src/simnet/socket.cpp" "src/CMakeFiles/remio_simnet.dir/simnet/socket.cpp.o" "gcc" "src/CMakeFiles/remio_simnet.dir/simnet/socket.cpp.o.d"
  "/root/repo/src/simnet/timescale.cpp" "src/CMakeFiles/remio_simnet.dir/simnet/timescale.cpp.o" "gcc" "src/CMakeFiles/remio_simnet.dir/simnet/timescale.cpp.o.d"
  "/root/repo/src/simnet/token_bucket.cpp" "src/CMakeFiles/remio_simnet.dir/simnet/token_bucket.cpp.o" "gcc" "src/CMakeFiles/remio_simnet.dir/simnet/token_bucket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/remio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
