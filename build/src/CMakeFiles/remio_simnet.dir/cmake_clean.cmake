file(REMOVE_RECURSE
  "CMakeFiles/remio_simnet.dir/simnet/fabric.cpp.o"
  "CMakeFiles/remio_simnet.dir/simnet/fabric.cpp.o.d"
  "CMakeFiles/remio_simnet.dir/simnet/socket.cpp.o"
  "CMakeFiles/remio_simnet.dir/simnet/socket.cpp.o.d"
  "CMakeFiles/remio_simnet.dir/simnet/timescale.cpp.o"
  "CMakeFiles/remio_simnet.dir/simnet/timescale.cpp.o.d"
  "CMakeFiles/remio_simnet.dir/simnet/token_bucket.cpp.o"
  "CMakeFiles/remio_simnet.dir/simnet/token_bucket.cpp.o.d"
  "libremio_simnet.a"
  "libremio_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remio_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
