file(REMOVE_RECURSE
  "libremio_simnet.a"
)
