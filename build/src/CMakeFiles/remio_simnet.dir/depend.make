# Empty dependencies file for remio_simnet.
# This may be replaced when dependencies are built.
