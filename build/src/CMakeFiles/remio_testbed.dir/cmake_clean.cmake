file(REMOVE_RECURSE
  "CMakeFiles/remio_testbed.dir/testbed/cluster.cpp.o"
  "CMakeFiles/remio_testbed.dir/testbed/cluster.cpp.o.d"
  "CMakeFiles/remio_testbed.dir/testbed/harness.cpp.o"
  "CMakeFiles/remio_testbed.dir/testbed/harness.cpp.o.d"
  "CMakeFiles/remio_testbed.dir/testbed/phase.cpp.o"
  "CMakeFiles/remio_testbed.dir/testbed/phase.cpp.o.d"
  "CMakeFiles/remio_testbed.dir/testbed/workloads.cpp.o"
  "CMakeFiles/remio_testbed.dir/testbed/workloads.cpp.o.d"
  "CMakeFiles/remio_testbed.dir/testbed/world.cpp.o"
  "CMakeFiles/remio_testbed.dir/testbed/world.cpp.o.d"
  "libremio_testbed.a"
  "libremio_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remio_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
