file(REMOVE_RECURSE
  "libremio_testbed.a"
)
