# Empty dependencies file for remio_testbed.
# This may be replaced when dependencies are built.
