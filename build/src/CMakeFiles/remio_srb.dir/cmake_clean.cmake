file(REMOVE_RECURSE
  "CMakeFiles/remio_srb.dir/srb/client.cpp.o"
  "CMakeFiles/remio_srb.dir/srb/client.cpp.o.d"
  "CMakeFiles/remio_srb.dir/srb/mcat.cpp.o"
  "CMakeFiles/remio_srb.dir/srb/mcat.cpp.o.d"
  "CMakeFiles/remio_srb.dir/srb/object_store.cpp.o"
  "CMakeFiles/remio_srb.dir/srb/object_store.cpp.o.d"
  "CMakeFiles/remio_srb.dir/srb/protocol.cpp.o"
  "CMakeFiles/remio_srb.dir/srb/protocol.cpp.o.d"
  "CMakeFiles/remio_srb.dir/srb/server.cpp.o"
  "CMakeFiles/remio_srb.dir/srb/server.cpp.o.d"
  "libremio_srb.a"
  "libremio_srb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remio_srb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
