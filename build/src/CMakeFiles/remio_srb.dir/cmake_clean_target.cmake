file(REMOVE_RECURSE
  "libremio_srb.a"
)
