# Empty dependencies file for remio_srb.
# This may be replaced when dependencies are built.
