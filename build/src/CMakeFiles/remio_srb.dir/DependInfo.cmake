
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/srb/client.cpp" "src/CMakeFiles/remio_srb.dir/srb/client.cpp.o" "gcc" "src/CMakeFiles/remio_srb.dir/srb/client.cpp.o.d"
  "/root/repo/src/srb/mcat.cpp" "src/CMakeFiles/remio_srb.dir/srb/mcat.cpp.o" "gcc" "src/CMakeFiles/remio_srb.dir/srb/mcat.cpp.o.d"
  "/root/repo/src/srb/object_store.cpp" "src/CMakeFiles/remio_srb.dir/srb/object_store.cpp.o" "gcc" "src/CMakeFiles/remio_srb.dir/srb/object_store.cpp.o.d"
  "/root/repo/src/srb/protocol.cpp" "src/CMakeFiles/remio_srb.dir/srb/protocol.cpp.o" "gcc" "src/CMakeFiles/remio_srb.dir/srb/protocol.cpp.o.d"
  "/root/repo/src/srb/server.cpp" "src/CMakeFiles/remio_srb.dir/srb/server.cpp.o" "gcc" "src/CMakeFiles/remio_srb.dir/srb/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/remio_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/remio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
