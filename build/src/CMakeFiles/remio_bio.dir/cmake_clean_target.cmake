file(REMOVE_RECURSE
  "libremio_bio.a"
)
