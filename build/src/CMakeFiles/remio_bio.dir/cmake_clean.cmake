file(REMOVE_RECURSE
  "CMakeFiles/remio_bio.dir/bio/align.cpp.o"
  "CMakeFiles/remio_bio.dir/bio/align.cpp.o.d"
  "CMakeFiles/remio_bio.dir/bio/fasta.cpp.o"
  "CMakeFiles/remio_bio.dir/bio/fasta.cpp.o.d"
  "CMakeFiles/remio_bio.dir/bio/kmer_index.cpp.o"
  "CMakeFiles/remio_bio.dir/bio/kmer_index.cpp.o.d"
  "CMakeFiles/remio_bio.dir/bio/synth.cpp.o"
  "CMakeFiles/remio_bio.dir/bio/synth.cpp.o.d"
  "libremio_bio.a"
  "libremio_bio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remio_bio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
