
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bio/align.cpp" "src/CMakeFiles/remio_bio.dir/bio/align.cpp.o" "gcc" "src/CMakeFiles/remio_bio.dir/bio/align.cpp.o.d"
  "/root/repo/src/bio/fasta.cpp" "src/CMakeFiles/remio_bio.dir/bio/fasta.cpp.o" "gcc" "src/CMakeFiles/remio_bio.dir/bio/fasta.cpp.o.d"
  "/root/repo/src/bio/kmer_index.cpp" "src/CMakeFiles/remio_bio.dir/bio/kmer_index.cpp.o" "gcc" "src/CMakeFiles/remio_bio.dir/bio/kmer_index.cpp.o.d"
  "/root/repo/src/bio/synth.cpp" "src/CMakeFiles/remio_bio.dir/bio/synth.cpp.o" "gcc" "src/CMakeFiles/remio_bio.dir/bio/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/remio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
