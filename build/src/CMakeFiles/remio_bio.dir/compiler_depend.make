# Empty compiler generated dependencies file for remio_bio.
# This may be replaced when dependencies are built.
