
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpiio/async_fallback.cpp" "src/CMakeFiles/remio_mpiio.dir/mpiio/async_fallback.cpp.o" "gcc" "src/CMakeFiles/remio_mpiio.dir/mpiio/async_fallback.cpp.o.d"
  "/root/repo/src/mpiio/collective.cpp" "src/CMakeFiles/remio_mpiio.dir/mpiio/collective.cpp.o" "gcc" "src/CMakeFiles/remio_mpiio.dir/mpiio/collective.cpp.o.d"
  "/root/repo/src/mpiio/file.cpp" "src/CMakeFiles/remio_mpiio.dir/mpiio/file.cpp.o" "gcc" "src/CMakeFiles/remio_mpiio.dir/mpiio/file.cpp.o.d"
  "/root/repo/src/mpiio/request.cpp" "src/CMakeFiles/remio_mpiio.dir/mpiio/request.cpp.o" "gcc" "src/CMakeFiles/remio_mpiio.dir/mpiio/request.cpp.o.d"
  "/root/repo/src/mpiio/ufs.cpp" "src/CMakeFiles/remio_mpiio.dir/mpiio/ufs.cpp.o" "gcc" "src/CMakeFiles/remio_mpiio.dir/mpiio/ufs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/remio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/remio_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/remio_simnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
