file(REMOVE_RECURSE
  "libremio_mpiio.a"
)
