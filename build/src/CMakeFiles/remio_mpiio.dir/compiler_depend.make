# Empty compiler generated dependencies file for remio_mpiio.
# This may be replaced when dependencies are built.
