file(REMOVE_RECURSE
  "CMakeFiles/remio_mpiio.dir/mpiio/async_fallback.cpp.o"
  "CMakeFiles/remio_mpiio.dir/mpiio/async_fallback.cpp.o.d"
  "CMakeFiles/remio_mpiio.dir/mpiio/collective.cpp.o"
  "CMakeFiles/remio_mpiio.dir/mpiio/collective.cpp.o.d"
  "CMakeFiles/remio_mpiio.dir/mpiio/file.cpp.o"
  "CMakeFiles/remio_mpiio.dir/mpiio/file.cpp.o.d"
  "CMakeFiles/remio_mpiio.dir/mpiio/request.cpp.o"
  "CMakeFiles/remio_mpiio.dir/mpiio/request.cpp.o.d"
  "CMakeFiles/remio_mpiio.dir/mpiio/ufs.cpp.o"
  "CMakeFiles/remio_mpiio.dir/mpiio/ufs.cpp.o.d"
  "libremio_mpiio.a"
  "libremio_mpiio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remio_mpiio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
