file(REMOVE_RECURSE
  "libremio_compress.a"
)
