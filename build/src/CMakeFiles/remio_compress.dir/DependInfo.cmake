
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/frame.cpp" "src/CMakeFiles/remio_compress.dir/compress/frame.cpp.o" "gcc" "src/CMakeFiles/remio_compress.dir/compress/frame.cpp.o.d"
  "/root/repo/src/compress/lzmini.cpp" "src/CMakeFiles/remio_compress.dir/compress/lzmini.cpp.o" "gcc" "src/CMakeFiles/remio_compress.dir/compress/lzmini.cpp.o.d"
  "/root/repo/src/compress/null.cpp" "src/CMakeFiles/remio_compress.dir/compress/null.cpp.o" "gcc" "src/CMakeFiles/remio_compress.dir/compress/null.cpp.o.d"
  "/root/repo/src/compress/registry.cpp" "src/CMakeFiles/remio_compress.dir/compress/registry.cpp.o" "gcc" "src/CMakeFiles/remio_compress.dir/compress/registry.cpp.o.d"
  "/root/repo/src/compress/rle.cpp" "src/CMakeFiles/remio_compress.dir/compress/rle.cpp.o" "gcc" "src/CMakeFiles/remio_compress.dir/compress/rle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/remio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
