file(REMOVE_RECURSE
  "CMakeFiles/remio_compress.dir/compress/frame.cpp.o"
  "CMakeFiles/remio_compress.dir/compress/frame.cpp.o.d"
  "CMakeFiles/remio_compress.dir/compress/lzmini.cpp.o"
  "CMakeFiles/remio_compress.dir/compress/lzmini.cpp.o.d"
  "CMakeFiles/remio_compress.dir/compress/null.cpp.o"
  "CMakeFiles/remio_compress.dir/compress/null.cpp.o.d"
  "CMakeFiles/remio_compress.dir/compress/registry.cpp.o"
  "CMakeFiles/remio_compress.dir/compress/registry.cpp.o.d"
  "CMakeFiles/remio_compress.dir/compress/rle.cpp.o"
  "CMakeFiles/remio_compress.dir/compress/rle.cpp.o.d"
  "libremio_compress.a"
  "libremio_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remio_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
