# Empty dependencies file for remio_compress.
# This may be replaced when dependencies are built.
