file(REMOVE_RECURSE
  "CMakeFiles/compress_upload.dir/compress_upload.cpp.o"
  "CMakeFiles/compress_upload.dir/compress_upload.cpp.o.d"
  "compress_upload"
  "compress_upload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_upload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
