# Empty dependencies file for compress_upload.
# This may be replaced when dependencies are built.
