# Empty compiler generated dependencies file for scommands.
# This may be replaced when dependencies are built.
