file(REMOVE_RECURSE
  "CMakeFiles/scommands.dir/scommands.cpp.o"
  "CMakeFiles/scommands.dir/scommands.cpp.o.d"
  "scommands"
  "scommands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scommands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
