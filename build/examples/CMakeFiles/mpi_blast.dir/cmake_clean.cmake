file(REMOVE_RECURSE
  "CMakeFiles/mpi_blast.dir/mpi_blast.cpp.o"
  "CMakeFiles/mpi_blast.dir/mpi_blast.cpp.o.d"
  "mpi_blast"
  "mpi_blast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_blast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
