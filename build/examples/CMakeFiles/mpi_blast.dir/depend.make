# Empty dependencies file for mpi_blast.
# This may be replaced when dependencies are built.
