# Empty dependencies file for laplace_checkpoint.
# This may be replaced when dependencies are built.
