file(REMOVE_RECURSE
  "CMakeFiles/laplace_checkpoint.dir/laplace_checkpoint.cpp.o"
  "CMakeFiles/laplace_checkpoint.dir/laplace_checkpoint.cpp.o.d"
  "laplace_checkpoint"
  "laplace_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laplace_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
