
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_codec.cpp" "bench/CMakeFiles/micro_codec.dir/micro_codec.cpp.o" "gcc" "bench/CMakeFiles/micro_codec.dir/micro_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/remio_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/remio_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/remio_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/remio_srb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/remio_mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/remio_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/remio_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/remio_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/remio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
