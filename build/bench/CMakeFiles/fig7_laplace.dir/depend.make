# Empty dependencies file for fig7_laplace.
# This may be replaced when dependencies are built.
