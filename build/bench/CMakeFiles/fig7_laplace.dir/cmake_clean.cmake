file(REMOVE_RECURSE
  "CMakeFiles/fig7_laplace.dir/fig7_laplace.cpp.o"
  "CMakeFiles/fig7_laplace.dir/fig7_laplace.cpp.o.d"
  "fig7_laplace"
  "fig7_laplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_laplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
