# Empty dependencies file for fig9_compression.
# This may be replaced when dependencies are built.
