file(REMOVE_RECURSE
  "CMakeFiles/fig9_compression.dir/fig9_compression.cpp.o"
  "CMakeFiles/fig9_compression.dir/fig9_compression.cpp.o.d"
  "fig9_compression"
  "fig9_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
