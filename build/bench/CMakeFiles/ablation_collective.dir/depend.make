# Empty dependencies file for ablation_collective.
# This may be replaced when dependencies are built.
