# Empty dependencies file for fig8_perf_streams.
# This may be replaced when dependencies are built.
