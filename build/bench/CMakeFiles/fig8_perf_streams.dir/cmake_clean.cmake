file(REMOVE_RECURSE
  "CMakeFiles/fig8_perf_streams.dir/fig8_perf_streams.cpp.o"
  "CMakeFiles/fig8_perf_streams.dir/fig8_perf_streams.cpp.o.d"
  "fig8_perf_streams"
  "fig8_perf_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_perf_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
