# Empty dependencies file for fig6_mpiblast.
# This may be replaced when dependencies are built.
