file(REMOVE_RECURSE
  "CMakeFiles/fig6_mpiblast.dir/fig6_mpiblast.cpp.o"
  "CMakeFiles/fig6_mpiblast.dir/fig6_mpiblast.cpp.o.d"
  "fig6_mpiblast"
  "fig6_mpiblast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_mpiblast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
