file(REMOVE_RECURSE
  "CMakeFiles/ablation_iothreads.dir/ablation_iothreads.cpp.o"
  "CMakeFiles/ablation_iothreads.dir/ablation_iothreads.cpp.o.d"
  "ablation_iothreads"
  "ablation_iothreads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_iothreads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
