# Empty compiler generated dependencies file for ablation_iothreads.
# This may be replaced when dependencies are built.
