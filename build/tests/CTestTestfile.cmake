# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_simnet[1]_include.cmake")
include("/root/repo/build/tests/test_compress[1]_include.cmake")
include("/root/repo/build/tests/test_mcat[1]_include.cmake")
include("/root/repo/build/tests/test_srb[1]_include.cmake")
include("/root/repo/build/tests/test_minimpi[1]_include.cmake")
include("/root/repo/build/tests/test_mpiio[1]_include.cmake")
include("/root/repo/build/tests/test_semplar[1]_include.cmake")
include("/root/repo/build/tests/test_bio[1]_include.cmake")
include("/root/repo/build/tests/test_testbed[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_collective[1]_include.cmake")
include("/root/repo/build/tests/test_redundant[1]_include.cmake")
include("/root/repo/build/tests/test_protocol_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_failure[1]_include.cmake")
include("/root/repo/build/tests/test_striping_property[1]_include.cmake")
