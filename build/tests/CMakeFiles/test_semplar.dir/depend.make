# Empty dependencies file for test_semplar.
# This may be replaced when dependencies are built.
