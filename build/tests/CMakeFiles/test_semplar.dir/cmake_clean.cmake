file(REMOVE_RECURSE
  "CMakeFiles/test_semplar.dir/test_semplar.cpp.o"
  "CMakeFiles/test_semplar.dir/test_semplar.cpp.o.d"
  "test_semplar"
  "test_semplar.pdb"
  "test_semplar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_semplar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
