# Empty compiler generated dependencies file for test_redundant.
# This may be replaced when dependencies are built.
