file(REMOVE_RECURSE
  "CMakeFiles/test_redundant.dir/test_redundant.cpp.o"
  "CMakeFiles/test_redundant.dir/test_redundant.cpp.o.d"
  "test_redundant"
  "test_redundant.pdb"
  "test_redundant[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_redundant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
