file(REMOVE_RECURSE
  "CMakeFiles/test_bio.dir/test_bio.cpp.o"
  "CMakeFiles/test_bio.dir/test_bio.cpp.o.d"
  "test_bio"
  "test_bio.pdb"
  "test_bio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
