file(REMOVE_RECURSE
  "CMakeFiles/test_mcat.dir/test_mcat.cpp.o"
  "CMakeFiles/test_mcat.dir/test_mcat.cpp.o.d"
  "test_mcat"
  "test_mcat.pdb"
  "test_mcat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
