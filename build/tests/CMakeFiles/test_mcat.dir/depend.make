# Empty dependencies file for test_mcat.
# This may be replaced when dependencies are built.
