file(REMOVE_RECURSE
  "CMakeFiles/test_srb.dir/test_srb.cpp.o"
  "CMakeFiles/test_srb.dir/test_srb.cpp.o.d"
  "test_srb"
  "test_srb.pdb"
  "test_srb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_srb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
