# Empty dependencies file for test_srb.
# This may be replaced when dependencies are built.
