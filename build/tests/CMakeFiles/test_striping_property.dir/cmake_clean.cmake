file(REMOVE_RECURSE
  "CMakeFiles/test_striping_property.dir/test_striping_property.cpp.o"
  "CMakeFiles/test_striping_property.dir/test_striping_property.cpp.o.d"
  "test_striping_property"
  "test_striping_property.pdb"
  "test_striping_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_striping_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
